package relational

import (
	"fmt"
	"sort"
	"strings"
)

// execSelectInterp runs a SELECT through the interpreted evaluator:
// access-path planning, joins, filtering, aggregation, projection, DISTINCT,
// ordering and limiting, resolving column references per row. It is the
// semantic oracle for the compiled path (compile.go) — differential tests
// assert both agree — and serves statements the compiler refuses as well as
// direct Run calls.
func (db *DB) execSelectInterp(sel *SelectStmt, params []Value) (*Result, error) {
	base, err := db.table(sel.From.Table)
	if err != nil {
		return nil, err
	}
	baseName := strings.ToLower(sel.From.Name())

	path := base.planAccess(sel.From.Name(), sel.Where, params)
	planLines := []string{path.desc}

	// Materialize base rows.
	var rows []Row
	if path.all {
		_, snap := base.snapshot()
		rows = snap
	} else {
		base.mu.RLock()
		rows = make([]Row, 0, len(path.ids))
		for _, id := range path.ids {
			if id >= 0 && id < len(base.rows) && base.live[id] {
				rows = append(rows, base.rows[id])
			}
		}
		base.mu.RUnlock()
	}

	cols := make([]envCol, 0, len(base.schema.Columns))
	for _, c := range base.schema.Columns {
		cols = append(cols, envCol{table: baseName, name: strings.ToLower(c.Name)})
	}
	// Track pretty names for star expansion.
	pretty := append([]string(nil), base.schema.Names()...)

	// Hash joins, applied left to right.
	for _, j := range sel.Joins {
		jt, err := db.table(j.Table.Table)
		if err != nil {
			return nil, err
		}
		jName := strings.ToLower(j.Table.Name())
		_, jRows := jt.snapshot()

		// Determine which side of ON belongs to the joined table.
		jCols := make([]envCol, 0, len(jt.schema.Columns))
		for _, c := range jt.schema.Columns {
			jCols = append(jCols, envCol{table: jName, name: strings.ToLower(c.Name)})
		}
		leftRef, rightRef := j.LCol, j.RCol
		jEnv := &env{cols: jCols}
		if _, err := jEnv.resolve(&rightRef); err != nil {
			// ON was written joined-side first; swap.
			leftRef, rightRef = rightRef, leftRef
			if _, err2 := jEnv.resolve(&rightRef); err2 != nil {
				return nil, fmt.Errorf("relational: join condition references no column of %s", j.Table.Name())
			}
		}
		rIdx, err := jEnv.resolve(&rightRef)
		if err != nil {
			return nil, err
		}
		curEnv := &env{cols: cols}
		lIdx, err := curEnv.resolve(&leftRef)
		if err != nil {
			return nil, err
		}
		// Build hash on joined table (binary keys; see buildJoinHash in
		// key.go, shared with the compiled executor).
		var scratch []byte
		build := buildJoinHash(jRows, rIdx)
		joined := make([]Row, 0, len(rows))
		nullRight := make(Row, len(jt.schema.Columns))
		for i := range nullRight {
			nullRight[i] = Null
		}
		for _, lr := range rows {
			v := lr[lIdx]
			var matches []Row
			if !v.IsNull() {
				scratch = appendValueKey(scratch[:0], v)
				if bk := build[string(scratch)]; bk != nil {
					matches = bk.rows
				}
			}
			if len(matches) == 0 {
				if j.Left {
					nr := make(Row, 0, len(lr)+len(nullRight))
					nr = append(nr, lr...)
					nr = append(nr, nullRight...)
					joined = append(joined, nr)
				}
				continue
			}
			for _, rr := range matches {
				nr := make(Row, 0, len(lr)+len(rr))
				nr = append(nr, lr...)
				nr = append(nr, rr...)
				joined = append(joined, nr)
			}
		}
		rows = joined
		cols = append(cols, jCols...)
		pretty = append(pretty, jt.schema.Names()...)
		kind := "HashJoin"
		if j.Left {
			kind = "LeftHashJoin"
		}
		planLines = append(planLines, fmt.Sprintf("%s(%s ON %s = %s)", kind, j.Table.Name(), j.LCol.String(), j.RCol.String()))
	}

	// Filter.
	if sel.Where != nil {
		e := &env{cols: cols}
		filtered := rows[:0:0]
		for _, r := range rows {
			e.row = r
			v, err := eval(e, sel.Where, params)
			if err != nil {
				return nil, err
			}
			if truthy(v) {
				filtered = append(filtered, r)
			}
		}
		rows = filtered
		planLines = append(planLines, "Filter("+exprDisplay(sel.Where, params)+")")
	}

	// Aggregation?
	aggregated := len(sel.GroupBy) > 0
	for _, it := range sel.Items {
		if !it.Star && hasAggregate(it.Expr) {
			aggregated = true
		}
	}

	var out *Result
	if aggregated {
		out, err = aggregate(sel, rows, cols, pretty, params)
		if err != nil {
			return nil, err
		}
		if len(sel.GroupBy) > 0 {
			planLines = append(planLines, fmt.Sprintf("GroupBy(%d keys)", len(sel.GroupBy)))
		} else {
			planLines = append(planLines, "Aggregate")
		}
	} else {
		out, err = project(sel, rows, cols, pretty, params)
		if err != nil {
			return nil, err
		}
	}

	if sel.Distinct {
		out.Rows = distinctRows(out.Rows)
		planLines = append(planLines, "Distinct")
	}

	if len(sel.OrderBy) > 0 {
		if err := orderResult(sel, out, cols, rows, params, aggregated); err != nil {
			return nil, err
		}
		planLines = append(planLines, fmt.Sprintf("Sort(%d keys)", len(sel.OrderBy)))
	}

	if sel.Offset > 0 {
		if sel.Offset >= len(out.Rows) {
			out.Rows = nil
		} else {
			out.Rows = out.Rows[sel.Offset:]
		}
	}
	if sel.Limit >= 0 && sel.Limit < len(out.Rows) {
		out.Rows = out.Rows[:sel.Limit]
		planLines = append(planLines, fmt.Sprintf("Limit(%d)", sel.Limit))
	}

	// Plan strings are an EXPLAIN artifact: ordinary queries skip the render
	// (the compiled engine does the same, so differential runs stay aligned).
	if sel.Explain {
		out.Plan = strings.Join(planLines, " -> ")
		return &Result{Columns: []string{"plan"}, Rows: []Row{{NewString(out.Plan)}}, Plan: out.Plan}, nil
	}
	return out, nil
}

// project evaluates non-aggregate select items per row.
func project(sel *SelectStmt, rows []Row, cols []envCol, pretty []string, params []Value) (*Result, error) {
	var names []string
	for _, it := range sel.Items {
		if it.Star {
			names = append(names, pretty...)
			continue
		}
		names = append(names, itemName(it))
	}
	res := &Result{Columns: names}
	e := &env{cols: cols}
	for _, r := range rows {
		e.row = r
		var or Row
		for _, it := range sel.Items {
			if it.Star {
				or = append(or, r...)
				continue
			}
			v, err := eval(e, it.Expr, params)
			if err != nil {
				return nil, err
			}
			or = append(or, v)
		}
		res.Rows = append(res.Rows, or)
	}
	return res, nil
}

func itemName(it SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	if c, ok := it.Expr.(*ColumnRef); ok {
		return c.Column
	}
	return exprString(it.Expr)
}

// aggregate groups rows by the GROUP BY keys (or a single global group) and
// evaluates aggregate select items per group.
func aggregate(sel *SelectStmt, rows []Row, cols []envCol, pretty []string, params []Value) (*Result, error) {
	for _, it := range sel.Items {
		if it.Star {
			return nil, fmt.Errorf("relational: SELECT * cannot be combined with aggregates")
		}
	}
	e := &env{cols: cols}
	type group struct {
		rows []Row
	}
	var groups []*group
	byKey := map[string]*group{}
	var scratch []byte
	if len(sel.GroupBy) == 0 {
		g := &group{rows: rows}
		groups = append(groups, g)
	} else {
		for _, r := range rows {
			e.row = r
			scratch = scratch[:0]
			for _, gc := range sel.GroupBy {
				gcCopy := gc
				i, err := e.resolve(&gcCopy)
				if err != nil {
					return nil, err
				}
				scratch = appendValueKey(scratch, r[i])
			}
			g, ok := byKey[string(scratch)]
			if !ok {
				g = &group{}
				byKey[string(scratch)] = g
				groups = append(groups, g)
			}
			g.rows = append(g.rows, r)
		}
	}

	var names []string
	for _, it := range sel.Items {
		names = append(names, itemName(it))
	}
	res := &Result{Columns: names}
	for _, g := range groups {
		if len(sel.GroupBy) == 0 && len(g.rows) == 0 {
			// Global aggregate over empty input still yields one row.
			var or Row
			for _, it := range sel.Items {
				v, err := evalAgg(e, it.Expr, g.rows, params)
				if err != nil {
					return nil, err
				}
				or = append(or, v)
			}
			res.Rows = append(res.Rows, or)
			continue
		}
		if sel.Having != nil {
			hv, err := evalAgg(e, sel.Having, g.rows, params)
			if err != nil {
				return nil, err
			}
			if !truthy(hv) {
				continue
			}
		}
		var or Row
		for _, it := range sel.Items {
			v, err := evalAgg(e, it.Expr, g.rows, params)
			if err != nil {
				return nil, err
			}
			or = append(or, v)
		}
		res.Rows = append(res.Rows, or)
	}
	return res, nil
}

// evalAgg evaluates an expression that may contain aggregates over the rows
// of one group. Non-aggregate subexpressions are evaluated on the group's
// first row (they should be GROUP BY keys).
func evalAgg(e *env, x Expr, rows []Row, params []Value) (Value, error) {
	switch v := x.(type) {
	case *AggExpr:
		return computeAgg(e, v, rows, params)
	case *BinaryExpr:
		if !hasAggregate(v) {
			return evalOnFirst(e, x, rows, params)
		}
		l, err := evalAgg(e, v.L, rows, params)
		if err != nil {
			return Null, err
		}
		r, err := evalAgg(e, v.R, rows, params)
		if err != nil {
			return Null, err
		}
		return applyBinaryValues(v.Op, l, r)
	case *UnaryExpr:
		inner, err := evalAgg(e, v.E, rows, params)
		if err != nil {
			return Null, err
		}
		return NewBool(!truthy(inner)), nil
	default:
		return evalOnFirst(e, x, rows, params)
	}
}

func evalOnFirst(e *env, x Expr, rows []Row, params []Value) (Value, error) {
	if len(rows) == 0 {
		return Null, nil
	}
	e.row = rows[0]
	return eval(e, x, params)
}

func computeAgg(e *env, a *AggExpr, rows []Row, params []Value) (Value, error) {
	if a.Star {
		return NewInt(int64(len(rows))), nil
	}
	var vals []Value
	seen := map[string]bool{}
	var scratch []byte
	for _, r := range rows {
		e.row = r
		v, err := eval(e, a.Arg, params)
		if err != nil {
			return Null, err
		}
		if v.IsNull() {
			continue
		}
		if a.Distinct {
			scratch = appendValueKey(scratch[:0], v)
			if seen[string(scratch)] {
				continue
			}
			seen[string(scratch)] = true
		}
		vals = append(vals, v)
	}
	switch a.Fn {
	case "COUNT":
		return NewInt(int64(len(vals))), nil
	case "SUM", "AVG":
		var sum float64
		allInt := true
		for _, v := range vals {
			f, ok := v.numeric()
			if !ok {
				return Null, fmt.Errorf("relational: %s over non-numeric value", a.Fn)
			}
			if v.T != TInt {
				allInt = false
			}
			sum += f
		}
		if len(vals) == 0 {
			return Null, nil
		}
		if a.Fn == "AVG" {
			return NewFloat(sum / float64(len(vals))), nil
		}
		if allInt {
			return NewInt(int64(sum)), nil
		}
		return NewFloat(sum), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return Null, nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c := Compare(v, best)
			if (a.Fn == "MIN" && c < 0) || (a.Fn == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	default:
		return Null, fmt.Errorf("relational: unknown aggregate %q", a.Fn)
	}
}

func distinctRows(rows []Row) []Row {
	seen := make(map[string]struct{}, len(rows))
	out := rows[:0:0]
	var scratch []byte
	for _, r := range rows {
		scratch = appendRowKey(scratch[:0], r)
		if _, dup := seen[string(scratch)]; dup {
			continue
		}
		seen[string(scratch)] = struct{}{}
		out = append(out, r)
	}
	return out
}

// orderResult sorts the projected rows. ORDER BY keys naming an output
// column (or alias) sort on the output; otherwise, for non-aggregated
// queries, the key is evaluated against the underlying input row.
func orderResult(sel *SelectStmt, out *Result, cols []envCol, inputRows []Row, params []Value, aggregated bool) error {
	type sortKey struct {
		vals []Value
	}
	keys := make([]sortKey, len(out.Rows))

	for ki, ob := range sel.OrderBy {
		// Try output column first (same resolution rule as the compiler).
		if cr, ok := ob.Expr.(*ColumnRef); ok && cr.Table == "" {
			if i := outColumnIndex(out.Columns, cr.Column); i >= 0 {
				for ri := range out.Rows {
					keys[ri].vals = append(keys[ri].vals, out.Rows[ri][i])
				}
				continue
			}
		}
		if aggregated {
			return fmt.Errorf("relational: ORDER BY key %q must be an output column in aggregate queries", exprString(ob.Expr))
		}
		if len(inputRows) != len(out.Rows) {
			return fmt.Errorf("relational: internal: row count mismatch in ORDER BY")
		}
		e := &env{cols: cols}
		for ri := range inputRows {
			e.row = inputRows[ri]
			v, err := eval(e, ob.Expr, params)
			if err != nil {
				return err
			}
			keys[ri].vals = append(keys[ri].vals, v)
		}
		_ = ki
	}

	idx := make([]int, len(out.Rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		for ki, ob := range sel.OrderBy {
			c := Compare(keys[idx[a]].vals[ki], keys[idx[b]].vals[ki])
			if c == 0 {
				continue
			}
			if ob.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	sorted := make([]Row, len(out.Rows))
	for i, p := range idx {
		sorted[i] = out.Rows[p]
	}
	out.Rows = sorted
	return nil
}
