// benchharness regenerates every figure of the paper as a measured table.
//
// Usage:
//
//	benchharness              # run all experiments
//	benchharness -fig F7      # run one (F1..F10, A1..A12)
//	benchharness -fig A4      # plan-cache ablation (statement-cache hit/miss counters)
//	benchharness -fig A5      # concurrent DAG scheduler: fan-out speedup + multi-session throughput
//	benchharness -fig A6      # step-result memoization: repeated-ask speedup + cross-session dedup
//	benchharness -fig A7      # plan compiler: compiled-vs-interpreted ablation (scan/join/group-by)
//	benchharness -fig A8      # durability: crash replay vs snapshot restore + warm memo across restart
//	benchharness -fig A9      # front end: shape-keyed plan cache vs exact keying on literal-inlined SQL
//	benchharness -fig A10     # observability: instrumented vs uninstrumented ask throughput
//	benchharness -fig A11     # resilience: overload control under open-loop multi-tenant load
//	benchharness -fig A12     # flight recorder: exemplars, event log, SLO burn over real HTTP
//	benchharness -seed 7      # change the deterministic seed
//	benchharness -short       # reduced iterations/latencies (smoke mode, used by make bench-smoke)
//	benchharness -json DIR    # also write each table as machine-readable DIR/BENCH_<ID>.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"blueprint/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "experiment id to run (F1..F10, A1..A12, or 'all')")
	seed := flag.Int64("seed", 42, "deterministic seed for workloads and the simulated LLM")
	short := flag.Bool("short", false, "smoke mode: reduced iterations and simulated latencies")
	jsonDir := flag.String("json", "", "directory to write BENCH_<ID>.json files (empty: text only)")
	flag.Parse()
	experiments.Short = *short

	runners := map[string]func(int64) (*experiments.Table, error){
		"F1":  experiments.Fig1EndToEnd,
		"F2":  experiments.Fig2Deployment,
		"F3":  experiments.Fig3AgentModel,
		"F4":  experiments.Fig4PetriTriggering,
		"F5":  experiments.Fig5DataRegistry,
		"F6":  experiments.Fig6TaskPlan,
		"F7":  experiments.Fig7DataPlan,
		"F8":  experiments.Fig8Conversation,
		"F9":  experiments.Fig9UIFlow,
		"F10": experiments.Fig10ConversationFlow,
		"A1":  experiments.AblationBudget,
		"A2":  experiments.AblationOptimizer,
		"A3":  experiments.AblationStreams,
		"A4":  experiments.AblationPlanCache,
		"A5":  experiments.AblationScheduler,
		"A6":  experiments.AblationMemo,
		"A7":  experiments.AblationCompile,
		"A8":  experiments.AblationDurability,
		"A9":  experiments.FrontendShapeCache,
		"A10": experiments.AblationObservability,
		"A11": experiments.AblationResilience,
		"A12": experiments.FlightRecorder,
	}

	if strings.EqualFold(*fig, "all") {
		tables, err := experiments.All(*seed)
		for _, t := range tables {
			fmt.Println(t)
			if werr := writeJSON(*jsonDir, t); werr != nil {
				log.Fatal(werr)
			}
		}
		if err != nil {
			log.Fatal(err)
		}
		return
	}
	run, ok := runners[strings.ToUpper(*fig)]
	if !ok {
		log.Fatalf("unknown experiment %q (want F1..F10, A1..A12, all)", *fig)
	}
	t, err := run(*seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(t)
	if err := writeJSON(*jsonDir, t); err != nil {
		log.Fatal(err)
	}
}

// writeJSON persists one table as DIR/BENCH_<ID>.json so CI can archive the
// raw figures next to the rendered text.
func writeJSON(dir string, t *experiments.Table) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	raw, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_"+t.ID+".json")
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
