// Package memo implements cross-session step-result memoization for the
// task coordinator: a concurrency-safe, bounded (LRU + optional TTL) cache
// of agent invocation results keyed by a content hash of (agent name, agent
// version, canonicalized input bindings).
//
// # Architecture
//
// The blueprint paper's coordinator (§V-H) re-executes every plan step from
// scratch, and its QoS/optimizer discussion (§IV) prices each plan at the
// full sum of its steps. Enterprise traffic, however, is dominated by
// repeated asks over slowly-changing registries and data: "Scalable
// Inference Architectures for Compound AI Systems" (PAPERS.md) identifies
// response caching/reuse as the single biggest production cost lever, and
// the compound-AI-systems survey lists result caching as a core component.
// This package is that reuse layer:
//
//   - The coordinator's scheduler consults the store before dispatching a
//     ready step; a hit satisfies the step immediately (zero cost, ~zero
//     marginal critical-path latency charged to the budget) and unblocks its
//     dependents.
//   - Single-flight deduplication coalesces N concurrent identical steps —
//     across plans and across sessions, since coordinator.Service instances
//     share one Coordinator and therefore one Store — into exactly one
//     execution; the rest await the winner's result.
//   - Cacheability is declared per agent in the registry
//     (registry.AgentSpec.Cacheable) with an optional freshness hint
//     (registry.QoSProfile.Freshness) that becomes the entry TTL.
//   - Invalidation is explicit and version-aware: the agent registry bumps
//     an agent's version only on real spec changes and notifies the store
//     (InvalidateAgent); the data registry versions its assets and notifies
//     on updates (InvalidateSource) so steps that read registered sources
//     (registry.AgentSpec.Reads) are dropped when their data changes.
//     Invalidation during an in-flight execution poisons the flight: the
//     result is neither cached nor shared with coalesced waiters, who
//     re-execute against the new version instead of consuming a stale value.
//   - The optimizer's plan projection (optimizer.EstimatePlanWithMemo)
//     accepts the store as a snapshot, pricing plans with expected hits at
//     their true residual cost — cache-aware planning.
//
// Effectiveness is observable through Stats (hits, misses, evictions,
// invalidations, dedup-coalesced, saved cost/latency, HitRate) and the
// benchharness -fig A6 experiment.
package memo

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"
)

// DefaultCapacity bounds the store when New is given a non-positive size.
const DefaultCapacity = 4096

// Key identifies one memoizable step execution: a content hash of the agent
// name, its registry version, and the canonicalized input bindings.
type Key string

// ComputeKey hashes (agent, version, inputs) into a Key. Inputs are
// canonicalized via JSON with sorted object keys (encoding/json sorts map
// keys recursively), so binding order never matters. Inputs that cannot be
// marshaled (channels, funcs, NaN...) make the step uncacheable and return
// an error.
func ComputeKey(agent string, version int, inputs map[string]any) (Key, error) {
	canon, err := json.Marshal(inputs)
	if err != nil {
		return "", fmt.Errorf("memo: inputs not canonicalizable: %w", err)
	}
	h := sha256.New()
	h.Write([]byte(agent))
	h.Write([]byte{0})
	var v [8]byte
	binary.LittleEndian.PutUint64(v[:], uint64(version))
	h.Write(v[:])
	h.Write([]byte{0})
	h.Write(canon)
	return Key(hex.EncodeToString(h.Sum(nil))), nil
}

// Entry is one memoized step result.
type Entry struct {
	// Outputs are the step's output parameters.
	Outputs map[string]any
	// Cost and Latency are the actuals of the original execution — what a
	// hit saves (hits themselves are charged at zero).
	Cost    float64
	Latency time.Duration
}

// Outcome reports how Do satisfied a request.
type Outcome int

// Do outcomes.
const (
	// Miss: the caller led the flight and executed the step itself.
	Miss Outcome = iota
	// Hit: a cached entry satisfied the request without executing.
	Hit
	// Coalesced: an identical in-flight execution was awaited and its
	// result shared (single-flight deduplication).
	Coalesced
)

func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Coalesced:
		return "coalesced"
	default:
		return "miss"
	}
}

// Stats are the store's observability counters.
type Stats struct {
	// Hits/Misses count Get and Do lookups (a coalesced request is neither).
	Hits   int
	Misses int
	// Evictions counts entries dropped by the LRU bound.
	Evictions int
	// Invalidations counts entries dropped by InvalidateAgent /
	// InvalidateSource (expired-TTL drops count as misses, not here).
	Invalidations int
	// Coalesced counts requests satisfied by awaiting an identical
	// in-flight execution (dedup-coalesced).
	Coalesced int
	// Entries is the current resident entry count.
	Entries int
	// SavedCost and SavedLatency accumulate the original actuals of every
	// hit and coalesced request — the work reuse avoided.
	SavedCost    float64
	SavedLatency time.Duration
	// Restored counts entries loaded from the durability snapshot/log at
	// recovery — the warm-start seed a restarted process begins with.
	Restored int
	// StaleServes counts GetStale reads that found a resident entry — the
	// degraded-answer path taken while a breaker was open or the daemon was
	// shedding load.
	StaleServes int
}

// HitRate is hits/(hits+misses); 0 when nothing was looked up.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// entry is the resident record behind one key.
type entry struct {
	key      Key
	agent    string
	sources  []string
	val      Entry
	storedAt time.Time
	expires  time.Time // zero = never
}

// flight is one in-progress execution other requests may coalesce onto.
type flight struct {
	done chan struct{} // closed when the leader finishes
	// Written by the leader before close(done), read-only afterwards.
	val    Entry
	err    error
	shared bool // false when the flight was poisoned by invalidation
	// Epoch snapshot at flight start: if any relevant epoch advances before
	// completion, the result is stale and must not be cached or shared.
	agent       string
	agentEpoch  uint64
	sourceEpoch map[string]uint64
}

// Store is the bounded, concurrency-safe memoization cache. The zero value
// is not usable; construct with New. A nil *Store is a valid "disabled"
// store: Get always misses and Do always executes.
type Store struct {
	mu       sync.Mutex
	capacity int
	entries  map[Key]*list.Element // values are *entry
	lru      *list.List            // front = most recently used
	byAgent  map[string]map[Key]struct{}
	bySource map[string]map[Key]struct{}
	flights  map[Key]*flight
	// Epochs advance on invalidation; in-flight executions that started
	// under an older epoch are poisoned (never cached, never shared).
	agentEpoch  map[string]uint64
	sourceEpoch map[string]uint64
	stats       Stats
	now         func() time.Time // injectable for TTL tests

	// dur is the optional durability wiring (durable.go): cacheable
	// results and invalidations are logged to the shared WAL and restored
	// on reopen, version-checked against the restored registries.
	dur DurableConfig
}

// New creates a store bounded to capacity entries (DefaultCapacity when
// capacity <= 0).
func New(capacity int) *Store {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Store{
		capacity:    capacity,
		entries:     make(map[Key]*list.Element),
		lru:         list.New(),
		byAgent:     make(map[string]map[Key]struct{}),
		bySource:    make(map[string]map[Key]struct{}),
		flights:     make(map[Key]*flight),
		agentEpoch:  make(map[string]uint64),
		sourceEpoch: make(map[string]uint64),
		now:         time.Now,
	}
}

// Get returns the cached entry for key, counting a hit or miss. The
// returned outputs map is a fresh top-level copy (safe to add/remove
// keys), but nested values are shared with the cache and with every other
// hit — treat them as read-only, exactly like agent inputs.
func (s *Store) Get(key Key) (Entry, bool) {
	if s == nil {
		return Entry{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.lookupLocked(key)
	if !ok {
		s.stats.Misses++
		return Entry{}, false
	}
	s.stats.Hits++
	s.stats.SavedCost += e.val.Cost
	s.stats.SavedLatency += e.val.Latency
	return cloneEntry(e.val), true
}

// Peek returns the cached entry without touching recency or counters — the
// read-only view the optimizer's cache-aware projection uses. Expired
// entries are invisible. Safe on a nil store.
func (s *Store) Peek(key Key) (Entry, bool) {
	if s == nil {
		return Entry{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		return Entry{}, false
	}
	e := el.Value.(*entry)
	if !e.expires.IsZero() && s.now().After(e.expires) {
		return Entry{}, false
	}
	return cloneEntry(e.val), true
}

// GetStale returns the resident entry for key regardless of TTL expiry,
// together with its age since it was stored — the graceful-degradation read
// used when an agent's breaker is open or the daemon is shedding load. The
// caller decides whether the age is tolerable (resilience.DegradePolicy
// against the agent's declared freshness). Version-invalidated entries are
// gone entirely, so whatever GetStale returns is stale only in time, never
// in version. Counts a StaleServe, not a hit. Safe on a nil store.
func (s *Store) GetStale(key Key) (Entry, time.Duration, bool) {
	if s == nil {
		return Entry{}, 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		return Entry{}, 0, false
	}
	e := el.Value.(*entry)
	s.stats.StaleServes++
	// A stale serve proves the entry is still useful; keep it resident
	// through the brownout.
	s.lru.MoveToFront(el)
	return cloneEntry(e.val), s.now().Sub(e.storedAt), true
}

// Put stores an execution result under key. agent and sources drive
// invalidation; ttl (0 = forever) bounds freshness. Mostly useful for tests
// and warm-up — the coordinator goes through Do.
func (s *Store) Put(key Key, agent string, sources []string, ttl time.Duration, val Entry) {
	if s == nil {
		return
	}
	agent, sources = canonName(agent), canonNames(sources)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.putLocked(key, agent, sources, ttl, val)
	s.logPutLocked(key, agent, sources, ttl, val)
}

// canonName normalizes an agent/source name for the invalidation indexes
// and epoch maps: both registries are case-insensitive, so the memo layer
// must be too — otherwise a non-canonically-cased Reads declaration or
// invalidation would silently never match.
func canonName(name string) string { return strings.ToLower(name) }

func canonNames(names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = canonName(n)
	}
	return out
}

// Do is the single-flight memoized execution path. It returns a cached
// entry when present (Hit); otherwise, if an identical execution is already
// in flight, it awaits and shares that result (Coalesced); otherwise the
// caller becomes the flight leader, exec runs exactly once, and a
// successful result is cached (Miss).
//
// Correctness under invalidation: InvalidateAgent/InvalidateSource advance
// epochs; a flight whose epochs moved while it executed is poisoned — its
// result is returned to the leader (the leader really did execute) but is
// neither cached nor shared, and coalesced waiters loop to re-execute
// against the new version rather than consume a stale value. A leader
// error likewise is not shared; waiters retry themselves.
//
// ctx bounds only the waiting of coalesced callers; the leader's exec is
// responsible for honouring its own cancellation.
func (s *Store) Do(ctx context.Context, key Key, agent string, sources []string, ttl time.Duration, exec func() (Entry, error)) (Entry, Outcome, error) {
	if s == nil {
		e, err := exec()
		return e, Miss, err
	}
	agent, sources = canonName(agent), canonNames(sources)
	for {
		s.mu.Lock()
		if e, ok := s.lookupLocked(key); ok {
			s.stats.Hits++
			s.stats.SavedCost += e.val.Cost
			s.stats.SavedLatency += e.val.Latency
			s.mu.Unlock()
			return cloneEntry(e.val), Hit, nil
		}
		if f, ok := s.flights[key]; ok {
			s.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return Entry{}, Coalesced, ctx.Err()
			}
			if f.err == nil && f.shared {
				s.mu.Lock()
				s.stats.Coalesced++
				s.stats.SavedCost += f.val.Cost
				s.stats.SavedLatency += f.val.Latency
				s.mu.Unlock()
				return cloneEntry(f.val), Coalesced, nil
			}
			// The flight failed or was invalidated mid-execution: loop and
			// execute fresh (possibly coalescing onto a newer flight).
			continue
		}
		f := &flight{
			done:        make(chan struct{}),
			agent:       agent,
			agentEpoch:  s.agentEpoch[agent],
			sourceEpoch: make(map[string]uint64, len(sources)),
		}
		for _, src := range sources {
			f.sourceEpoch[src] = s.sourceEpoch[src]
		}
		s.flights[key] = f
		s.stats.Misses++
		s.mu.Unlock()

		val, err := exec()

		s.mu.Lock()
		delete(s.flights, key)
		f.val, f.err = val, err
		f.shared = err == nil && s.epochsCurrentLocked(f)
		if f.shared {
			s.putLocked(key, agent, sources, ttl, val)
			s.logPutLocked(key, agent, sources, ttl, val)
		}
		s.mu.Unlock()
		close(f.done)
		return val, Miss, err
	}
}

// InvalidateAgent drops every entry produced by the agent and poisons its
// in-flight executions; wired to the agent registry's change hook (version
// bumps on update/derive, deregistration). Returns the entries dropped.
func (s *Store) InvalidateAgent(agent string) int {
	if s == nil {
		return 0
	}
	agent = canonName(agent)
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.invalidateAgentLocked(agent)
	s.logInvalidateLocked(opInvalidateAgent, agent)
	return n
}

func (s *Store) invalidateAgentLocked(agent string) int {
	s.agentEpoch[agent]++
	n := 0
	for key := range s.byAgent[agent] {
		s.removeLocked(key)
		n++
	}
	s.stats.Invalidations += n
	return n
}

// InvalidateSource drops every entry whose agent reads the named data
// source and poisons the corresponding in-flight executions; wired to the
// data registry's asset-version bumps. Returns the entries dropped.
func (s *Store) InvalidateSource(source string) int {
	if s == nil {
		return 0
	}
	source = canonName(source)
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.invalidateSourceLocked(source)
	s.logInvalidateLocked(opInvalidateSource, source)
	return n
}

func (s *Store) invalidateSourceLocked(source string) int {
	s.sourceEpoch[source]++
	n := 0
	for key := range s.bySource[source] {
		s.removeLocked(key)
		n++
	}
	s.stats.Invalidations += n
	return n
}

// Stats returns a snapshot of the counters. Safe on a nil store.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.entries)
	return st
}

// Len reports the resident entry count.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// ---- internals (all require s.mu) ----

// lookupLocked returns a live entry, promoting it in the LRU. Expired
// entries are invisible here but stay resident (at their LRU position, so
// the capacity bound still ages them out): the degraded-serve path
// (GetStale) may still answer from them while a breaker is open or the
// daemon is shedding, and a later re-execution replaces them in place.
func (s *Store) lookupLocked(key Key) (*entry, bool) {
	el, ok := s.entries[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*entry)
	if !e.expires.IsZero() && s.now().After(e.expires) {
		return nil, false
	}
	s.lru.MoveToFront(el)
	return e, true
}

func (s *Store) putLocked(key Key, agent string, sources []string, ttl time.Duration, val Entry) {
	if el, ok := s.entries[key]; ok {
		// Replace in place (e.g. re-execution after TTL expiry raced a Put).
		s.detachLocked(el.Value.(*entry))
		s.lru.Remove(el)
		delete(s.entries, key)
	}
	e := &entry{key: key, agent: agent, sources: append([]string(nil), sources...), val: cloneEntry(val), storedAt: s.now()}
	if ttl > 0 {
		e.expires = e.storedAt.Add(ttl)
	}
	s.entries[key] = s.lru.PushFront(e)
	if s.byAgent[agent] == nil {
		s.byAgent[agent] = make(map[Key]struct{})
	}
	s.byAgent[agent][key] = struct{}{}
	for _, src := range e.sources {
		if s.bySource[src] == nil {
			s.bySource[src] = make(map[Key]struct{})
		}
		s.bySource[src][key] = struct{}{}
	}
	for len(s.entries) > s.capacity {
		oldest := s.lru.Back()
		if oldest == nil {
			break
		}
		s.removeLocked(oldest.Value.(*entry).key)
		s.stats.Evictions++
	}
}

func (s *Store) removeLocked(key Key) {
	el, ok := s.entries[key]
	if !ok {
		return
	}
	s.detachLocked(el.Value.(*entry))
	s.lru.Remove(el)
	delete(s.entries, key)
}

// detachLocked unlinks the entry from the agent and source indexes.
func (s *Store) detachLocked(e *entry) {
	if keys := s.byAgent[e.agent]; keys != nil {
		delete(keys, e.key)
		if len(keys) == 0 {
			delete(s.byAgent, e.agent)
		}
	}
	for _, src := range e.sources {
		if keys := s.bySource[src]; keys != nil {
			delete(keys, e.key)
			if len(keys) == 0 {
				delete(s.bySource, src)
			}
		}
	}
}

// epochsCurrentLocked reports whether no relevant invalidation happened
// since the flight started.
func (s *Store) epochsCurrentLocked(f *flight) bool {
	if s.agentEpoch[f.agent] != f.agentEpoch {
		return false
	}
	for src, ep := range f.sourceEpoch {
		if s.sourceEpoch[src] != ep {
			return false
		}
	}
	return true
}

// cloneEntry shallow-copies the outputs map so callers (and the cache)
// never share one mutable top-level map across plans. Nested values stay
// shared — the system-wide contract is that step outputs are immutable
// once produced (agents never mutate their inputs).
func cloneEntry(e Entry) Entry {
	if e.Outputs == nil {
		return e
	}
	out := make(map[string]any, len(e.Outputs))
	for k, v := range e.Outputs {
		out[k] = v
	}
	e.Outputs = out
	return e
}
