package resilience

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"
)

// RetryPolicy generalizes the coordinator's seed-era "one replan retry" into
// a declared policy: how many attempts a step gets, how backoff grows
// between them, and which errors are worth retrying at all. The scheduler
// charges every backoff sleep against the plan's remaining latency budget,
// so retries consume the deadline they are trying to save — a plan never
// retries itself past its own SLO.
type RetryPolicy struct {
	// MaxAttempts bounds total tries (1 = no retry; 0 = treat as 1).
	MaxAttempts int
	// BaseBackoff is the delay before the first retry.
	BaseBackoff time.Duration
	// MaxBackoff caps the grown delay.
	MaxBackoff time.Duration
	// Multiplier grows the delay per retry (default 2).
	Multiplier float64
	// JitterFrac randomizes each delay by ±JitterFrac (e.g. 0.2 = ±20%),
	// decorrelating synchronized retry storms.
	JitterFrac float64
}

// DefaultRetryPolicy is the production default: three attempts, 10ms base
// doubling to a 250ms cap, ±20% jitter.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 250 * time.Millisecond, Multiplier: 2, JitterFrac: 0.2}
}

// Attempts returns the effective attempt bound (at least 1).
func (p RetryPolicy) Attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Backoff computes the delay before retry number retry (1-based: the delay
// after the first failed attempt is Backoff(1)). Jitter draws from the
// package RNG, which is safe for concurrent use.
func (p RetryPolicy) Backoff(retry int) time.Duration {
	if retry < 1 || p.BaseBackoff <= 0 {
		return 0
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = 2
	}
	d := float64(p.BaseBackoff)
	for i := 1; i < retry; i++ {
		d *= mult
		if p.MaxBackoff > 0 && d >= float64(p.MaxBackoff) {
			d = float64(p.MaxBackoff)
			break
		}
	}
	if p.MaxBackoff > 0 && d > float64(p.MaxBackoff) {
		d = float64(p.MaxBackoff)
	}
	if p.JitterFrac > 0 {
		d *= 1 + p.JitterFrac*(2*jitterFloat()-1)
	}
	if d < 0 {
		return 0
	}
	return time.Duration(d)
}

// jitterRNG backs Backoff's jitter. Retry jitter exists to decorrelate
// concurrent retries, so a process-wide locked source is exactly right.
var (
	jitterMu  sync.Mutex
	jitterRng = rand.New(rand.NewSource(1))
)

func jitterFloat() float64 {
	jitterMu.Lock()
	defer jitterMu.Unlock()
	return jitterRng.Float64()
}

// Retryable classifies an error as transient. Injected faults, step
// timeouts and explicitly-marked transient errors retry; context
// cancellation, breaker rejections and shed decisions never do (retrying a
// cancelled plan wastes the budget of live ones; retrying into an open
// breaker or a shedding governor amplifies the overload the breaker exists
// to stop).
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if errors.Is(err, ErrBreakerOpen) || errors.Is(err, ErrOverloaded) {
		return false
	}
	return true
}

// SleepBudgeted sleeps d unless ctx is cancelled first; it reports whether
// the full sleep completed. The scheduler calls it between attempts after
// charging d to the plan's latency budget.
func SleepBudgeted(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
