package relational

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"blueprint/internal/obs"
)

// Result is the outcome of a query.
type Result struct {
	// Columns are the output column names.
	Columns []string
	// Rows are the result tuples.
	Rows []Row
	// Plan describes the chosen access path (always populated for SELECT;
	// EXPLAIN returns only this).
	Plan string
}

// String renders the result as an aligned text table (a simple renderer in
// the spirit of §V-B).
func (r *Result) String() string {
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	for i, c := range r.Columns {
		if i > 0 {
			b.WriteString(" | ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], c)
	}
	b.WriteByte('\n')
	for _, row := range cells {
		for i, s := range row {
			if i > 0 {
				b.WriteString(" | ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], s)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Maps converts the result into a slice of column->value maps, convenient
// for JSON payloads in streams.
func (r *Result) Maps() []map[string]any {
	out := make([]map[string]any, len(r.Rows))
	for i, row := range r.Rows {
		m := make(map[string]any, len(r.Columns))
		for j, c := range r.Columns {
			if j < len(row) {
				m[c] = row[j].Go()
			}
		}
		out[i] = m
	}
	return out
}

// Query parses and executes sql with optional positional parameters bound to
// '?' placeholders. Parsed statements (and their compiled plans) are served
// from the DB's bounded LRU statement cache, so repeated texts skip the
// lexer, the parser and the plan compiler entirely; use Prepare for an
// explicit reusable handle.
func (db *DB) Query(sql string, params ...any) (*Result, error) {
	st, slot, binder, err := db.parseCached(sql)
	if err != nil {
		return nil, err
	}
	return db.runLogged(sql, st, slot, binder, params...)
}

// Exec runs a statement that does not produce rows (INSERT, UPDATE, DELETE,
// CREATE, DROP) and reports the number of affected rows. Like Query, it
// consults the statement cache.
func (db *DB) Exec(sql string, params ...any) (int, error) {
	st, slot, binder, err := db.parseCached(sql)
	if err != nil {
		return 0, err
	}
	res, err := db.runLogged(sql, st, slot, binder, params...)
	if err != nil {
		return 0, err
	}
	return affectedCount(res), nil
}

// affectedCount extracts the affected-row count from an exec-style result,
// falling back to the row count for row-producing statements.
func affectedCount(res *Result) int {
	if len(res.Columns) == 1 && res.Columns[0] == "affected" && len(res.Rows) == 1 {
		return int(res.Rows[0][0].I)
	}
	return len(res.Rows)
}

// Run executes a parsed statement. Successful mutations (DML and DDL)
// notify the OnWrite hooks with the affected table. Statements executed
// through Run directly (without a Query/Exec/Prepare plan slot) use the
// interpreted evaluator; the cached entry points use compiled plans. Run
// bypasses the durability WAL (the original SQL text is unavailable for a
// logical record): durable deployments mutate through Query/Exec/Prepare.
func (db *DB) Run(st Statement, params ...any) (*Result, error) {
	return db.runLogged("", st, nil, nil, params...)
}

// runLogged executes a statement, appending a WAL record for successful
// mutations when a durability sink is attached. The execution and the
// append run under the sink's LogMutation so the pair cannot straddle a
// snapshot boundary (logical SQL replay is not idempotent). binder (nil for
// exact-keyed statements) merges fingerprint-extracted literal values with
// the caller's explicit params into the unified slot vector the shared plan
// expects; the WAL record keeps the original SQL text and caller params —
// replay re-fingerprints deterministically.
func (db *DB) runLogged(sqlText string, st Statement, slot *planSlot, binder *paramBinder, params ...any) (*Result, error) {
	mStatements.Inc()
	if obs.On() {
		start := time.Now()
		defer mSQLLatency.ObserveSince(start)
	}
	vals := make([]Value, len(params))
	for i, p := range params {
		vals[i] = FromGo(p)
	}
	bound := binder.bind(vals)
	sink := db.durableSink()
	if sink == nil || sqlText == "" || !isMutationStmt(st) {
		return db.runVals(st, slot, bound)
	}
	var (
		res     *Result
		execErr error
		bufp    *[]byte
	)
	walErr := sink.LogMutation(func() ([]byte, error) {
		res, execErr = db.runVals(st, slot, bound)
		// Failing statements are logged too: a multi-row INSERT or an
		// UPDATE/DELETE can error midway with earlier rows already
		// applied, and execution is deterministic, so replaying the
		// statement reproduces exactly the partial effect the live run
		// kept (Apply ignores the identical re-failure). Skipping the
		// record here would make recovery diverge from the state every
		// later logged statement executed against.
		bufp = walBufPool.Get().(*[]byte)
		*bufp = appendWALRecord((*bufp)[:0], sqlText, vals)
		return *bufp, nil
	})
	if bufp != nil {
		walBufPool.Put(bufp)
	}
	if execErr != nil {
		return nil, execErr
	}
	if walErr != nil {
		// The in-memory state mutated but the WAL append failed: surface
		// it — the caller must treat the write as not durable.
		return nil, fmt.Errorf("relational: wal append: %w", walErr)
	}
	return res, nil
}

// runVals executes a parsed statement, using the slot's compiled plan when
// one is provided.
func (db *DB) runVals(st Statement, slot *planSlot, vals []Value) (*Result, error) {
	switch s := st.(type) {
	case *SelectStmt:
		return db.execSelect(s, slot, vals)
	case *InsertStmt:
		res, err := db.execInsert(s, vals)
		if err == nil {
			db.notifyWrite(s.Table)
		}
		return res, err
	case *CreateTableStmt:
		if err := db.CreateTable(s.Table, Schema{Columns: s.Columns}); err != nil {
			return nil, err
		}
		db.notifyWrite(s.Table)
		return affected(0), nil
	case *CreateIndexStmt:
		kind := HashIndex
		if s.Ordered {
			kind = OrderedIndex
		}
		if err := db.CreateIndex(s.Name, s.Table, s.Column, kind); err != nil {
			return nil, err
		}
		db.notifyWrite(s.Table)
		return affected(0), nil
	case *DropTableStmt:
		if err := db.DropTable(s.Table); err != nil {
			return nil, err
		}
		db.notifyWrite(s.Table)
		return affected(0), nil
	case *UpdateStmt:
		res, err := db.execUpdate(s, slot, vals)
		if err == nil {
			db.notifyWrite(s.Table)
		}
		return res, err
	case *DeleteStmt:
		res, err := db.execDelete(s, slot, vals)
		if err == nil {
			db.notifyWrite(s.Table)
		}
		return res, err
	default:
		return nil, errors.New("relational: unsupported statement")
	}
}

func affected(n int) *Result {
	return &Result{Columns: []string{"affected"}, Rows: []Row{{NewInt(int64(n))}}}
}

// env carries the column environment of the current row during evaluation.
type env struct {
	cols []envCol
	row  Row
}

type envCol struct {
	table string // effective table name (alias), lowercased
	name  string // column name, lowercased
}

func (e *env) resolve(c *ColumnRef) (int, error) {
	return resolveCol(e.cols, c)
}

// eval evaluates a scalar expression in the environment.
func eval(e *env, x Expr, params []Value) (Value, error) {
	switch v := x.(type) {
	case *Literal:
		return v.Val, nil
	case *Param:
		if v.Ordinal-1 >= len(params) || params[v.Ordinal-1].T == missingParamType {
			return Null, fmt.Errorf("relational: missing parameter %d", paramSrc(v))
		}
		return params[v.Ordinal-1], nil
	case *ColumnRef:
		i, err := e.resolve(v)
		if err != nil {
			return Null, err
		}
		return e.row[i], nil
	case *BinaryExpr:
		return evalBinary(e, v, params)
	case *UnaryExpr:
		val, err := eval(e, v.E, params)
		if err != nil {
			return Null, err
		}
		return NewBool(!truthy(val)), nil
	case *InExpr:
		val, err := eval(e, v.E, params)
		if err != nil {
			return Null, err
		}
		hit := false
		for _, item := range v.List {
			iv, err := eval(e, item, params)
			if err != nil {
				return Null, err
			}
			if Equal(val, iv) {
				hit = true
				break
			}
		}
		return NewBool(hit != v.Not), nil
	case *BetweenExpr:
		val, err := eval(e, v.E, params)
		if err != nil {
			return Null, err
		}
		lo, err := eval(e, v.Lo, params)
		if err != nil {
			return Null, err
		}
		hi, err := eval(e, v.Hi, params)
		if err != nil {
			return Null, err
		}
		in := !val.IsNull() && !lo.IsNull() && !hi.IsNull() &&
			Compare(val, lo) >= 0 && Compare(val, hi) <= 0
		return NewBool(in != v.Not), nil
	case *IsNullExpr:
		val, err := eval(e, v.E, params)
		if err != nil {
			return Null, err
		}
		return NewBool(val.IsNull() != v.Not), nil
	case *AggExpr:
		return Null, errors.New("relational: aggregate outside aggregation context")
	default:
		return Null, errors.New("relational: unsupported expression")
	}
}

func evalBinary(e *env, v *BinaryExpr, params []Value) (Value, error) {
	switch v.Op {
	case "AND":
		l, err := eval(e, v.L, params)
		if err != nil {
			return Null, err
		}
		if !truthy(l) {
			return NewBool(false), nil
		}
		r, err := eval(e, v.R, params)
		if err != nil {
			return Null, err
		}
		return NewBool(truthy(r)), nil
	case "OR":
		l, err := eval(e, v.L, params)
		if err != nil {
			return Null, err
		}
		if truthy(l) {
			return NewBool(true), nil
		}
		r, err := eval(e, v.R, params)
		if err != nil {
			return Null, err
		}
		return NewBool(truthy(r)), nil
	}
	l, err := eval(e, v.L, params)
	if err != nil {
		return Null, err
	}
	r, err := eval(e, v.R, params)
	if err != nil {
		return Null, err
	}
	return compareValues(v.Op, l, r)
}

// truthy converts a value to a boolean condition result.
func truthy(v Value) bool {
	switch v.T {
	case TBool:
		return v.B
	case TInt:
		return v.I != 0
	case TFloat:
		return v.F != 0
	case TString:
		return v.S != ""
	default:
		return false
	}
}

// likeMatch implements SQL LIKE with % (any run) and _ (single rune),
// case-insensitively. Case-insensitivity is a deliberate dialect choice:
// queries compiled from natural language should match regardless of casing.
func likeMatch(s, pattern string) bool {
	return likeRec(strings.ToLower(s), strings.ToLower(pattern))
}

func likeRec(s, p string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '%':
			// Collapse consecutive %.
			for len(p) > 0 && p[0] == '%' {
				p = p[1:]
			}
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(s[i:], p) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			s, p = s[1:], p[1:]
		default:
			if len(s) == 0 || s[0] != p[0] {
				return false
			}
			s, p = s[1:], p[1:]
		}
	}
	return len(s) == 0
}

// snapshot returns live rows and their ids under the table read lock.
func (t *table) snapshot() ([]int, []Row) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ids := make([]int, 0, t.liveCnt)
	rows := make([]Row, 0, t.liveCnt)
	for id, r := range t.rows {
		if t.live[id] {
			ids = append(ids, id)
			rows = append(rows, r)
		}
	}
	return ids, rows
}

// snapshotRows returns the live rows (in id order) without materializing the
// id slice — the scan entry point of the compiled executor.
func (t *table) snapshotRows() []Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	rows := make([]Row, 0, t.liveCnt)
	for id, r := range t.rows {
		if t.live[id] {
			rows = append(rows, r)
		}
	}
	return rows
}

// accessPath is the planner's choice for reading the base table.
type accessPath struct {
	desc string
	ids  []int // nil = full scan
	all  bool
}

// planAccess inspects WHERE conjuncts for a sargable predicate over an
// indexed column of the base table and returns matching row ids. The full
// WHERE is still applied afterwards, so the index is purely an accelerator.
func (t *table) planAccess(baseName string, where Expr, params []Value) accessPath {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if where == nil || len(t.indexes) == 0 {
		return accessPath{desc: "SeqScan(" + t.name + ")", all: true}
	}
	conjuncts := splitAnd(where)
	type candidate struct {
		rank int // lower is better: 0 equality, 1 IN, 2 range
		desc string
		ids  []int
	}
	var best *candidate
	consider := func(c candidate) {
		if best == nil || c.rank < best.rank || (c.rank == best.rank && len(c.ids) < len(best.ids)) {
			cc := c
			best = &cc
		}
	}
	colFor := func(e Expr) *indexDef {
		cr, ok := e.(*ColumnRef)
		if !ok {
			return nil
		}
		if cr.Table != "" && !strings.EqualFold(cr.Table, baseName) {
			return nil
		}
		return t.indexes[strings.ToLower(cr.Column)]
	}
	constVal := func(e Expr) (Value, bool) {
		switch x := e.(type) {
		case *Literal:
			return x.Val, true
		case *Param:
			if x.Ordinal-1 < len(params) && params[x.Ordinal-1].T != missingParamType {
				return params[x.Ordinal-1], true
			}
		}
		return Null, false
	}
	for _, cj := range conjuncts {
		switch x := cj.(type) {
		case *BinaryExpr:
			ix := colFor(x.L)
			v, ok := constVal(x.R)
			if ix == nil || !ok || v.IsNull() {
				// try flipped: literal op column
				ix = colFor(x.R)
				if ix == nil {
					continue
				}
				v2, ok2 := constVal(x.L)
				if !ok2 || v2.IsNull() {
					continue
				}
				// flip operator
				op, okf := flippedOp[x.Op]
				if !okf {
					continue
				}
				x = &BinaryExpr{Op: op, L: x.R, R: x.L}
				v = v2
			}
			switch x.Op {
			case "=":
				ids := ix.lookupEqLocked(v)
				// Concatenation instead of fmt.Sprintf: this is the hot
				// equality path and Sprintf's reflection is measurable there.
				consider(candidate{rank: 0, desc: "IndexScan(" + t.name + "." + ix.column + " = " + v.String() + ", " + ix.kind.String() + ")", ids: ids})
			case "<", "<=":
				if ix.kind == OrderedIndex {
					ids := ix.order.lookupRange(Null, v, false, x.Op == "<")
					consider(candidate{rank: 2, desc: fmt.Sprintf("IndexRange(%s.%s %s %s)", t.name, ix.column, x.Op, v), ids: ids})
				}
			case ">", ">=":
				if ix.kind == OrderedIndex {
					ids := ix.order.lookupRange(v, Null, x.Op == ">", false)
					consider(candidate{rank: 2, desc: fmt.Sprintf("IndexRange(%s.%s %s %s)", t.name, ix.column, x.Op, v), ids: ids})
				}
			}
		case *InExpr:
			if x.Not {
				continue
			}
			ix := colFor(x.E)
			if ix == nil {
				continue
			}
			var ids []int
			ok := true
			for _, item := range x.List {
				v, o := constVal(item)
				if !o {
					ok = false
					break
				}
				ids = append(ids, ix.lookupEqLocked(v)...)
			}
			if ok {
				consider(candidate{rank: 1, desc: fmt.Sprintf("IndexScan(%s.%s IN [%d values], %s)", t.name, ix.column, len(x.List), ix.kind), ids: dedupInts(ids)})
			}
		case *BetweenExpr:
			if x.Not {
				continue
			}
			ix := colFor(x.E)
			if ix == nil || ix.kind != OrderedIndex {
				continue
			}
			lo, ok1 := constVal(x.Lo)
			hi, ok2 := constVal(x.Hi)
			if !ok1 || !ok2 {
				continue
			}
			ids := ix.order.lookupRange(lo, hi, false, false)
			consider(candidate{rank: 2, desc: fmt.Sprintf("IndexRange(%s.%s BETWEEN %s AND %s)", t.name, ix.column, lo, hi), ids: ids})
		}
	}
	if best == nil {
		return accessPath{desc: "SeqScan(" + t.name + ")", all: true}
	}
	return accessPath{desc: best.desc, ids: best.ids}
}

// flippedOp mirrors a comparison operator for "literal op column" predicates
// rewritten to "column op literal" — shared by the interpreted planner and
// the compiled sargable-candidate builder so both normalize identically.
var flippedOp = map[string]string{"=": "=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}

// lookupEqLocked requires t.mu held (read).
func (ix *indexDef) lookupEqLocked(v Value) []int {
	if ix.kind == HashIndex {
		return append([]int(nil), ix.hash[v.Key()]...)
	}
	return ix.order.lookupEq(v)
}

func splitAnd(e Expr) []Expr {
	if b, ok := e.(*BinaryExpr); ok && b.Op == "AND" {
		return append(splitAnd(b.L), splitAnd(b.R)...)
	}
	return []Expr{e}
}

func dedupInts(xs []int) []int {
	seen := make(map[int]bool, len(xs))
	out := xs[:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	sort.Ints(out)
	return out
}
