package agent

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"blueprint/internal/obs"
	"blueprint/internal/resilience"
	"blueprint/internal/streams"
)

// Process-wide agent-runtime instruments (per-instance counters stay on
// Instance.Stats; these aggregate across all agents for /metrics).
var (
	mInvocations = obs.Default.Counter("blueprint_agent_invocations_total", "agent processor invocations across all instances")
	mInvErrors   = obs.Default.Counter("blueprint_agent_errors_total", "agent invocations that returned an error")
)

// Well-known per-session stream names. Streams are the only channel between
// components, so their naming is part of the architecture's contract.
func ControlStream(session string) string { return session + ":control" }

// SessionStream carries agent entry/exit signals and session directives.
func SessionStream(session string) string { return session + ":session" }

// DisplayStream carries user-facing renderings (§V-B output rendering).
func DisplayStream(session string) string { return session + ":display" }

// OutputStream is an agent's default output stream within a session.
func OutputStream(session, agent string) string { return session + ":" + agent + ":out" }

// Options configure an agent instance attachment.
type Options struct {
	// Workers is the worker-pool size (default 4).
	Workers int
	// Timeout bounds one processor call (default 30s).
	Timeout time.Duration
	// DisableListen turns off decentralized (tag) activation; the instance
	// then only reacts to EXECUTE_AGENT directives.
	DisableListen bool
}

// Stats are per-instance counters.
type Stats struct {
	Invocations int64
	Errors      int64
	CostTotal   float64
}

// Instance is one running agent attached to a session's streams.
type Instance struct {
	agent   *Agent
	store   *streams.Store
	session string
	opts    Options
	petri   *petriNet
	sem     chan struct{}
	wg      sync.WaitGroup // in-flight worker invocations
	loopWg  sync.WaitGroup // control/data loop goroutines
	dataSub *streams.Subscription
	ctrlSub *streams.Subscription

	invocations atomic.Int64
	errs        atomic.Int64
	costMu      sync.Mutex
	costTotal   float64
	nextInv     atomic.Int64
	stopOnce    sync.Once

	// live tracks the cancel funcs of in-flight invocations so ABORT
	// directives (session-wide, or targeted via an invocation_id arg) stop
	// running processor work instead of letting it burn its full timeout.
	liveMu sync.Mutex
	live   map[string]context.CancelFunc
}

// Attach starts an agent instance in a session: it subscribes to the
// session's streams per the agent's listen rule and to EXECUTE_AGENT
// directives on the control stream, announces ENTER_SESSION, and serves
// until Stop.
func Attach(store *streams.Store, session string, a *Agent, opts Options) (*Instance, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	params := make([]string, 0, len(a.Spec.Inputs))
	for _, p := range a.Spec.Inputs {
		if !p.Optional {
			params = append(params, p.Name)
		}
	}
	inst := &Instance{
		agent:   a,
		store:   store,
		session: session,
		opts:    opts,
		petri:   newPetriNet(params, PolicyFromSpec(a.Spec)),
		sem:     make(chan struct{}, opts.Workers),
		live:    make(map[string]context.CancelFunc),
	}

	for _, id := range []string{ControlStream(session), SessionStream(session), DisplayStream(session), OutputStream(session, a.Spec.Name)} {
		if _, err := store.EnsureStream(id, streams.StreamInfo{Session: session, Creator: a.Spec.Name}); err != nil {
			return nil, err
		}
	}

	// Announce entry (§V-E).
	if _, err := store.Append(streams.Message{
		Stream: SessionStream(session), Kind: streams.Control, Sender: a.Spec.Name,
		Directive: &streams.Directive{Op: streams.OpEnterSession, Agent: a.Spec.Name},
	}); err != nil {
		return nil, err
	}

	// Centralized activation: EXECUTE_AGENT directives addressed to us.
	inst.ctrlSub = store.Subscribe(streams.Filter{
		Session: session,
		Kinds:   []streams.Kind{streams.Control},
	}, false)
	inst.loopWg.Add(1)
	go func() {
		defer inst.loopWg.Done()
		inst.controlLoop()
	}()

	// Decentralized activation requires *designated* tags (§V-B): an agent
	// with no inclusion rule is centrally activated only, unless it opts
	// into listening to everything via the "listen_all" property.
	listenAll := false
	if v, ok := a.Spec.Properties["listen_all"].(bool); ok {
		listenAll = v
	}
	if !opts.DisableListen && len(a.Spec.Inputs) > 0 && (len(a.Spec.Listen.IncludeTags) > 0 || listenAll) {
		inst.dataSub = store.Subscribe(streams.Filter{
			Session:        session,
			Kinds:          []streams.Kind{streams.Data, streams.Event},
			IncludeTags:    a.Spec.Listen.IncludeTags,
			ExcludeTags:    a.Spec.Listen.ExcludeTags,
			ExcludeSenders: []string{a.Spec.Name},
		}, false)
		inst.loopWg.Add(1)
		go func() {
			defer inst.loopWg.Done()
			inst.dataLoop()
		}()
	}
	return inst, nil
}

// Name returns the agent name.
func (in *Instance) Name() string { return in.agent.Spec.Name }

// Stats returns a snapshot of the instance counters.
func (in *Instance) Stats() Stats {
	in.costMu.Lock()
	cost := in.costTotal
	in.costMu.Unlock()
	return Stats{
		Invocations: in.invocations.Load(),
		Errors:      in.errs.Load(),
		CostTotal:   cost,
	}
}

// PendingTokens reports queued tokens per input place (observability).
func (in *Instance) PendingTokens() map[string]int { return in.petri.pending() }

// Stop announces EXIT_SESSION, cancels subscriptions and waits for in-flight
// workers.
func (in *Instance) Stop() {
	in.stopOnce.Do(func() {
		if in.dataSub != nil {
			in.dataSub.Cancel()
		}
		in.ctrlSub.Cancel()
		// Wait for the loop goroutines first: they are the only dispatchers,
		// so once they exit no new wg.Add can race with wg.Wait below.
		in.loopWg.Wait()
		in.wg.Wait()
		// Best-effort exit signal; the store may already be closed.
		_, _ = in.store.Append(streams.Message{
			Stream: SessionStream(in.session), Kind: streams.Control, Sender: in.agent.Spec.Name,
			Directive: &streams.Directive{Op: streams.OpExitSession, Agent: in.agent.Spec.Name},
		})
	})
}

// controlLoop serves EXECUTE_AGENT directives addressed to this agent and
// ABORT directives cancelling in-flight work.
func (in *Instance) controlLoop() {
	for msg := range in.ctrlSub.C() {
		d := msg.Directive
		if d == nil {
			continue
		}
		if d.Op == streams.OpAbort && (d.Agent == "" || d.Agent == in.agent.Spec.Name) {
			// Targeted abort (invocation_id arg) cancels one invocation;
			// a bare abort cancels everything in flight.
			if id, _ := d.Args["invocation_id"].(string); id != "" {
				in.cancelInvocation(id)
			} else {
				in.cancelAll()
			}
			continue
		}
		if d.Op != streams.OpExecuteAgent || d.Agent != in.agent.Spec.Name {
			continue
		}
		inputs := map[string]any{}
		if raw, ok := d.Args["inputs"].(map[string]any); ok {
			for k, v := range raw {
				inputs[k] = v
			}
		}
		reply, _ := d.Args["reply_stream"].(string)
		invID, _ := d.Args["invocation_id"].(string)
		traceParent, _ := d.Args["trace_parent"].(string)
		if invID == "" {
			invID = fmt.Sprintf("%s-%d", in.agent.Spec.Name, in.nextInv.Add(1))
		}
		var deadline time.Time
		if ms, ok := d.Args["deadline_ms"].(float64); ok && ms > 0 {
			deadline = time.UnixMilli(int64(ms))
		}
		in.dispatch(Invocation{
			Session:      msg.Session,
			Inputs:       inputs,
			Trigger:      msg,
			ReplyStream:  reply,
			InvocationID: invID,
			TraceParent:  traceParent,
			Deadline:     deadline,
		})
	}
}

// cancelInvocation cancels one in-flight invocation by ID (no-op when it is
// not running here).
func (in *Instance) cancelInvocation(id string) {
	in.liveMu.Lock()
	cancel := in.live[id]
	in.liveMu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// cancelAll cancels every in-flight invocation on this instance.
func (in *Instance) cancelAll() {
	in.liveMu.Lock()
	cancels := make([]context.CancelFunc, 0, len(in.live))
	for _, c := range in.live {
		cancels = append(cancels, c)
	}
	in.liveMu.Unlock()
	for _, c := range cancels {
		c()
	}
}

// dataLoop implements decentralized activation: each matching message is a
// token offered to the PetriNet place named by the message's Param, a tag
// matching an input name, or — for single-input agents — the sole input.
func (in *Instance) dataLoop() {
	for msg := range in.dataSub.C() {
		place := in.placeFor(msg)
		if place == "" {
			continue
		}
		tuples := in.petri.offer(place, token{value: msg.Payload, msg: msg})
		for _, tuple := range tuples {
			inputs := make(map[string]any, len(tuple))
			var trigger streams.Message
			for p, tok := range tuple {
				inputs[p] = tok.value
				if tok.msg.TS > trigger.TS {
					trigger = tok.msg
				}
			}
			in.dispatch(Invocation{
				Session:      msg.Session,
				Inputs:       inputs,
				Trigger:      trigger,
				InvocationID: fmt.Sprintf("%s-%d", in.agent.Spec.Name, in.nextInv.Add(1)),
			})
		}
	}
}

func (in *Instance) placeFor(msg streams.Message) string {
	required := in.petri.params
	if msg.Param != "" {
		for _, p := range required {
			if p == msg.Param {
				return p
			}
		}
	}
	for _, p := range required {
		if msg.HasTag(p) {
			return p
		}
	}
	if len(required) == 1 {
		return required[0]
	}
	return ""
}

// dispatch runs the invocation on the worker pool.
func (in *Instance) dispatch(inv Invocation) {
	in.sem <- struct{}{}
	in.wg.Add(1)
	go func() {
		defer func() {
			<-in.sem
			in.wg.Done()
		}()
		in.run(inv)
	}()
}

func (in *Instance) run(inv Invocation) {
	if inv.Session == "" {
		inv.Session = in.session
	}
	in.fillDefaults(&inv)
	name := in.agent.Spec.Name

	// The processor context is bounded by min(instance timeout, time until
	// the caller's deadline): a plan nearly out of latency budget must not
	// have one step run for the full default timeout. The cancel func is
	// registered under the invocation ID so ABORT directives stop the work.
	timeout := in.opts.Timeout
	if !inv.Deadline.IsZero() {
		if rem := time.Until(inv.Deadline); rem < timeout {
			timeout = rem
		}
	}
	if timeout <= 0 {
		// Dead on arrival: report without invoking the processor.
		in.invocations.Add(1)
		mInvocations.Inc()
		in.errs.Add(1)
		mInvErrors.Inc()
		_, _ = in.store.Append(streams.Message{
			Stream: ControlStream(in.session), Kind: streams.Control, Sender: name,
			Directive: &streams.Directive{Op: OpAgentError, Agent: name, Args: map[string]any{
				"invocation_id": inv.InvocationID,
				"error":         context.DeadlineExceeded.Error(),
			}},
		})
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if inv.InvocationID != "" {
		in.liveMu.Lock()
		in.live[inv.InvocationID] = cancel
		in.liveMu.Unlock()
		defer func() {
			in.liveMu.Lock()
			delete(in.live, inv.InvocationID)
			in.liveMu.Unlock()
		}()
	}
	// Resume the caller's trace across the stream boundary (centralized
	// activation carries a trace_parent token); tag-triggered activations
	// anchor beneath the session's active root, or trace nothing when no
	// ask is in flight. The span rides ctx so processors that touch the
	// relational engine extend the tree.
	sp := obs.Spans.Resume(in.session, inv.TraceParent, "agent", name)
	sp.SetAttr("invocation", inv.InvocationID)
	ctx = obs.ContextWith(ctx, sp)
	defer sp.End()

	start := time.Now()
	// Fault-injection hook: when a chaos injector is active the invocation
	// may error, stall, or crash here instead of running the processor.
	var out Outputs
	err := resilience.Check(ctx, resilience.SiteAgent)
	if err == nil {
		out, err = in.agent.Process(ctx, inv)
	}
	elapsed := time.Since(start)
	in.invocations.Add(1)
	mInvocations.Inc()

	if err != nil {
		in.errs.Add(1)
		mInvErrors.Inc()
		sp.SetAttr("error", obs.Truncate(err.Error(), 120))
		_, _ = in.store.Append(streams.Message{
			Stream: ControlStream(in.session), Kind: streams.Control, Sender: name,
			Directive: &streams.Directive{Op: OpAgentError, Agent: name, Args: map[string]any{
				"invocation_id": inv.InvocationID,
				"error":         err.Error(),
			}},
		})
		return
	}

	usage := out.Usage
	if usage == (Usage{}) {
		usage = Usage{
			Cost:     in.agent.Spec.QoS.CostPerCall,
			Latency:  elapsed,
			Accuracy: in.agent.Spec.QoS.Accuracy,
		}
	}
	in.costMu.Lock()
	in.costTotal += usage.Cost
	in.costMu.Unlock()

	// Publish outputs: one message per output parameter, tagged with the
	// parameter name so downstream agents can listen selectively.
	outStream := inv.ReplyStream
	if outStream == "" {
		outStream = OutputStream(in.session, name)
	}
	for _, p := range in.agent.Spec.Outputs {
		v, ok := out.Values[p.Name]
		if !ok {
			continue
		}
		_, _ = in.store.Publish(streams.Message{
			Stream: outStream, Session: inv.Session, Kind: streams.Data,
			Sender: name, Param: p.Name,
			Tags:    append([]string{p.Name}, out.Tags...),
			Payload: v,
		})
	}
	if out.Display != "" {
		_, _ = in.store.Append(streams.Message{
			Stream: DisplayStream(in.session), Session: inv.Session, Kind: streams.Data,
			Sender: name, Payload: out.Display, Tags: []string{"display"},
		})
	}
	_, _ = in.store.Append(streams.Message{
		Stream: ControlStream(in.session), Kind: streams.Control, Sender: name,
		Directive: &streams.Directive{Op: OpAgentDone, Agent: name, Args: map[string]any{
			"invocation_id": inv.InvocationID,
			"cost":          usage.Cost,
			"latency_ms":    float64(usage.Latency) / float64(time.Millisecond),
			"accuracy":      usage.Accuracy,
			"reply_stream":  outStream,
		}},
	})
}

// fillDefaults binds declared defaults for optional parameters left unbound.
func (in *Instance) fillDefaults(inv *Invocation) {
	if inv.Inputs == nil {
		inv.Inputs = map[string]any{}
	}
	for _, p := range in.agent.Spec.Inputs {
		if _, ok := inv.Inputs[p.Name]; !ok && p.Optional && p.Default != nil {
			inv.Inputs[p.Name] = p.Default
		}
	}
}
