// Package planner implements the blueprint's task planner (§V-F, Fig. 6):
// it interprets a user utterance, decomposes it into sub-tasks according to
// intent templates, selects an agent for each sub-task by searching the
// agent registry, and wires agent outputs to downstream inputs, producing a
// declarative plan DAG that the task coordinator executes.
//
// As the paper prescribes, the planner is itself an agent: AsAgent wraps it
// so it listens to user utterances on streams and emits PLAN control
// messages for the coordinator.
package planner

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync/atomic"

	"blueprint/internal/llm"
	"blueprint/internal/nlq"
	"blueprint/internal/registry"
)

// Binding describes where one input parameter's value comes from.
type Binding struct {
	// FromStep/FromParam wire an upstream step's output parameter.
	FromStep  string `json:"from_step,omitempty"`
	FromParam string `json:"from_param,omitempty"`
	// FromUserText binds the original utterance (optionally transformed).
	FromUserText bool `json:"from_user_text,omitempty"`
	// Transform names a data-planner transformation to apply (e.g.
	// "criteria" extraction: PROFILER.CRITERIA <- USER.TEXT, §V-G).
	Transform string `json:"transform,omitempty"`
	// Value is a literal binding.
	Value any `json:"value,omitempty"`
}

// Step is one node of a task plan: a sub-task assigned to an agent.
type Step struct {
	// ID names the step within the plan ("s1", "s2", ...).
	ID string `json:"id"`
	// Agent is the registry name of the selected agent.
	Agent string `json:"agent"`
	// Task is the sub-task description that selected the agent.
	Task string `json:"task"`
	// Bindings wire each input parameter.
	Bindings map[string]Binding `json:"bindings,omitempty"`
	// Score is the registry match score (transparency).
	Score float64 `json:"score,omitempty"`
}

// Plan is a task plan DAG. Steps are in topological (execution) order; the
// DAG edges are implied by the FromStep bindings.
type Plan struct {
	// ID identifies the plan instance.
	ID string `json:"id"`
	// Utterance is the originating user request.
	Utterance string `json:"utterance"`
	// Intent is the classified intent driving template selection.
	Intent string `json:"intent"`
	// Steps are the plan nodes in execution order.
	Steps []Step `json:"steps"`
	// Explanation narrates planning decisions.
	Explanation []string `json:"explanation,omitempty"`
}

// Validate checks plan well-formedness: every step named and assigned,
// no duplicate IDs, every FromStep binding resolving to a plan step, and the
// dependency relation forming a DAG (cycle check via Waves). Steps need not
// be listed in topological order — the coordinator's scheduler derives the
// execution order from the dependency DAG.
func (p *Plan) Validate() error {
	if len(p.Steps) == 0 {
		return fmt.Errorf("planner: empty plan")
	}
	seen := map[string]bool{}
	for _, s := range p.Steps {
		if s.ID == "" || s.Agent == "" {
			return fmt.Errorf("planner: step missing id or agent")
		}
		if seen[s.ID] {
			return fmt.Errorf("planner: duplicate step id %q", s.ID)
		}
		seen[s.ID] = true
	}
	for _, s := range p.Steps {
		for param, b := range s.Bindings {
			if b.FromStep != "" && !seen[b.FromStep] {
				return fmt.Errorf("planner: step %s input %s depends on %q which is not a plan step", s.ID, param, b.FromStep)
			}
		}
	}
	if _, err := p.Waves(); err != nil {
		return err
	}
	return nil
}

// Step returns the step with the given id.
func (p *Plan) Step(id string) (Step, bool) {
	for _, s := range p.Steps {
		if s.ID == id {
			return s, true
		}
	}
	return Step{}, false
}

// String renders the plan DAG.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TaskPlan %s intent=%s %q\n", p.ID, p.Intent, p.Utterance)
	for _, s := range p.Steps {
		fmt.Fprintf(&b, "  %s: %s (%s)\n", s.ID, s.Agent, s.Task)
		for param, bind := range s.Bindings {
			switch {
			case bind.FromStep != "":
				fmt.Fprintf(&b, "    %s <- %s.%s\n", param, bind.FromStep, bind.FromParam)
			case bind.FromUserText:
				t := ""
				if bind.Transform != "" {
					t = " via " + bind.Transform
				}
				fmt.Fprintf(&b, "    %s <- USER.TEXT%s\n", param, t)
			default:
				fmt.Fprintf(&b, "    %s <- %v\n", param, bind.Value)
			}
		}
	}
	return b.String()
}

// ToJSON serializes the plan for stream transport.
func (p *Plan) ToJSON() map[string]any {
	raw, _ := json.Marshal(p)
	var m map[string]any
	_ = json.Unmarshal(raw, &m)
	return m
}

// FromJSON parses a plan from a stream payload.
func FromJSON(v any) (*Plan, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	var p Plan
	if err := json.Unmarshal(raw, &p); err != nil {
		return nil, err
	}
	return &p, nil
}

// SubTask is one templated sub-task within an intent.
type SubTask struct {
	// Description is the registry search text for agent selection.
	Description string
	// Transform names the user-text transform when the selected agent's
	// text input is fed from the utterance.
	Transform string
}

// Templates maps intent -> ordered sub-tasks. The defaults implement the
// paper's flows; applications may override (the planner is "ad hoc" and
// configurable, §IV).
type Templates map[string][]SubTask

// DefaultTemplates returns the case-study templates: the Fig. 6 pipeline for
// job search, and the Fig. 10 chain for open-ended queries.
func DefaultTemplates() Templates {
	return Templates{
		"job_search": {
			{Description: "collect job seeker profile information from the user", Transform: "criteria"},
			{Description: "match the job seeker profile with available job listings"},
			{Description: "present the matched jobs to the end user"},
		},
		"open_query": {
			{Description: "translate a natural language question into a database query"},
			{Description: "execute a database query against the enterprise databases"},
			{Description: "summarize and explain query results for the user"},
		},
		"summarize": {
			{Description: "summarize entity details for the user"},
		},
		"rank": {
			{Description: "rank and score candidates or jobs by match quality"},
			{Description: "present the matched jobs to the end user"},
		},
		"career_advice": {
			{Description: "provide career advice and skill recommendations"},
		},
		"profile": {
			{Description: "collect job seeker profile information from the user", Transform: "criteria"},
		},
		"smalltalk": {
			{Description: "present the matched jobs to the end user"},
		},
	}
}

// TaskPlanner produces task plans from utterances. It is safe for
// concurrent use: sessions share one planner, and the coordinator's
// concurrent services may plan and replan in parallel.
type TaskPlanner struct {
	reg       *registry.AgentRegistry
	model     *llm.Model
	templates Templates
	nextID    atomic.Int64
}

// New creates a task planner over an agent registry. The model classifies
// intents; templates default to DefaultTemplates when nil.
func New(reg *registry.AgentRegistry, model *llm.Model, templates Templates) *TaskPlanner {
	if templates == nil {
		templates = DefaultTemplates()
	}
	return &TaskPlanner{reg: reg, model: model, templates: templates}
}

// Plan interprets the utterance and produces a task plan.
func (tp *TaskPlanner) Plan(utterance string) (*Plan, error) {
	intent, _ := tp.model.Classify(utterance, nlq.StandardIntents)
	subtasks, ok := tp.templates[intent]
	if !ok || len(subtasks) == 0 {
		subtasks = tp.templates["open_query"]
		intent = "open_query"
	}
	plan := &Plan{
		ID:        fmt.Sprintf("plan-%d", tp.nextID.Add(1)),
		Utterance: utterance,
		Intent:    intent,
	}
	plan.Explanation = append(plan.Explanation, "intent: "+intent)

	for i, st := range subtasks {
		hits := tp.reg.FindForTask(st.Description, 3)
		if len(hits) == 0 {
			return nil, fmt.Errorf("planner: no agent found for sub-task %q", st.Description)
		}
		chosen := hits[0]
		step := Step{
			ID:       fmt.Sprintf("s%d", i+1),
			Agent:    chosen.Spec.Name,
			Task:     st.Description,
			Score:    chosen.Score,
			Bindings: map[string]Binding{},
		}
		tp.wire(&step, chosen.Spec, plan, st)
		plan.Steps = append(plan.Steps, step)
		plan.Explanation = append(plan.Explanation,
			fmt.Sprintf("sub-task %q -> agent %s (score %.3f)", st.Description, chosen.Spec.Name, chosen.Score))
		_ = tp.reg.RecordUsage(chosen.Spec.Name, st.Description)
	}
	return plan, plan.Validate()
}

// wire connects the step's inputs: earlier outputs by parameter name first,
// then the user utterance for text inputs, leaving optional inputs unbound
// (Fig. 6 "connecting input and output parameters of agents").
func (tp *TaskPlanner) wire(step *Step, spec registry.AgentSpec, plan *Plan, st SubTask) {
	for _, in := range spec.Inputs {
		bound := false
		for i := len(plan.Steps) - 1; i >= 0 && !bound; i-- {
			prev := plan.Steps[i]
			prevSpec, err := tp.reg.Get(prev.Agent)
			if err != nil {
				continue
			}
			for _, out := range prevSpec.Outputs {
				if strings.EqualFold(out.Name, in.Name) {
					step.Bindings[in.Name] = Binding{FromStep: prev.ID, FromParam: out.Name}
					bound = true
					break
				}
			}
		}
		if bound {
			continue
		}
		if strings.EqualFold(in.Type, "text") {
			step.Bindings[in.Name] = Binding{FromUserText: true, Transform: st.Transform}
			continue
		}
		// Non-text unbound inputs: optional ones stay unbound; required ones
		// get the user text with a transform hint so the coordinator asks
		// the data planner (§V-H).
		if !in.Optional {
			step.Bindings[in.Name] = Binding{FromUserText: true, Transform: "derive:" + in.Name}
		}
	}
}

// Replan produces an alternative plan after a step failed: the failed
// step's agent is replaced with the registry's next-best candidate (§V-H:
// the coordinator "could potentially trigger the task planner to replan").
func (tp *TaskPlanner) Replan(p *Plan, failedStepID string) (*Plan, error) {
	step, ok := p.Step(failedStepID)
	if !ok {
		return nil, fmt.Errorf("planner: unknown step %q", failedStepID)
	}
	hits := tp.reg.FindForTask(step.Task, 5)
	var alt *registry.AgentHit
	for i := range hits {
		if !strings.EqualFold(hits[i].Spec.Name, step.Agent) {
			alt = &hits[i]
			break
		}
	}
	if alt == nil {
		return nil, fmt.Errorf("planner: no alternative agent for step %q (%s)", failedStepID, step.Task)
	}
	np := &Plan{
		ID:        fmt.Sprintf("plan-%d", tp.nextID.Add(1)),
		Utterance: p.Utterance,
		Intent:    p.Intent,
		Steps:     make([]Step, len(p.Steps)),
	}
	copy(np.Steps, p.Steps)
	for i := range np.Steps {
		if np.Steps[i].ID == failedStepID {
			np.Steps[i].Agent = alt.Spec.Name
			np.Steps[i].Score = alt.Score
		}
	}
	np.Explanation = append(append([]string{}, p.Explanation...),
		fmt.Sprintf("replan: step %s reassigned %s -> %s", failedStepID, step.Agent, alt.Spec.Name))
	return np, np.Validate()
}
