package hragents

import (
	"strings"
	"testing"

	"blueprint/internal/agent"
)

// TestJobMatcherRespectsGovernance verifies the §VII privilege story end to
// end: restricting hr.jobs to another agent makes the JobMatcher's data
// planning fail with an unauthorized error, surfaced through the agent
// runtime's error report; re-granting restores service.
func TestJobMatcherRespectsGovernance(t *testing.T) {
	a := newApp(t, 1.0)
	if err := a.suite.DataReg.Grant("hr.jobs", "PAYROLL_ONLY"); err != nil {
		t.Fatal(err)
	}

	profile := map[string]any{"criteria": "data scientist position in SF bay area"}
	if err := agent.Execute(a.store, sess, JobMatcher,
		map[string]any{"JOBSEEKER_DATA": profile}, "reply:gov", "gov1"); err != nil {
		t.Fatal(err)
	}
	d := agent.AwaitDone(a.store, sess, "gov1")
	if d == nil || d.Op != agent.OpAgentError {
		t.Fatalf("expected error report, got %+v", d)
	}
	if msg, _ := d.Args["error"].(string); !strings.Contains(msg, "not authorized") {
		t.Fatalf("error = %q", msg)
	}

	// Grant the matcher and retry: service restored.
	if err := a.suite.DataReg.Grant("hr.jobs", JobMatcher); err != nil {
		t.Fatal(err)
	}
	if err := agent.Execute(a.store, sess, JobMatcher,
		map[string]any{"JOBSEEKER_DATA": profile}, "reply:gov2", "gov2"); err != nil {
		t.Fatal(err)
	}
	d = agent.AwaitDone(a.store, sess, "gov2")
	if d == nil || d.Op != agent.OpAgentDone {
		t.Fatalf("post-grant execution failed: %+v", d)
	}
	msgs, _ := a.store.ReadAll("reply:gov2")
	if len(msgs) == 0 {
		t.Fatal("no matches after grant")
	}
	matches := msgs[0].Payload.([]any)
	if len(matches) == 0 {
		t.Fatal("empty matches after grant")
	}
}
