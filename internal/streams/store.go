package streams

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Common store errors.
var (
	ErrStreamExists   = errors.New("streams: stream already exists")
	ErrStreamNotFound = errors.New("streams: stream not found")
	ErrStreamClosed   = errors.New("streams: stream closed")
	ErrStoreClosed    = errors.New("streams: store closed")
)

// StreamInfo describes a stream as a first-class data resource.
type StreamInfo struct {
	// ID is the unique stream identifier.
	ID string `json:"id"`
	// Session is the owning session scope, if any.
	Session string `json:"session,omitempty"`
	// Tags label the stream itself (distinct from per-message tags).
	Tags []string `json:"tags,omitempty"`
	// Creator names the component that created the stream.
	Creator string `json:"creator,omitempty"`
	// Closed reports whether the stream received its EOS sentinel.
	Closed bool `json:"closed"`
	// Len is the number of messages appended so far.
	Len int64 `json:"len"`
	// CreatedTS is the logical timestamp of creation.
	CreatedTS int64 `json:"created_ts"`
}

type stream struct {
	info StreamInfo
	msgs []Message
}

// Store is an embedded streams database: it owns every stream, delivers
// messages to subscribers, tracks statistics and optionally persists to a
// write-ahead log. All methods are safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	streams map[string]*stream
	order   []string // creation order, for deterministic listing
	subs    map[int64]*Subscription
	nextSub int64
	clock   atomic.Int64
	nextMsg atomic.Int64
	closed  bool

	// wal is the legacy stand-alone JSON WAL (Options.WALPath); sink is
	// the shared durability engine's append (SetDurable). At most one is
	// set in practice.
	wal  *walWriter
	sink func(payload []byte) error

	stats Stats
}

// Options configure a Store.
type Options struct {
	// WALPath enables write-ahead-log persistence to the given file.
	WALPath string
	// SubscriberBuffer is the per-subscription channel buffer (default 256).
	SubscriberBuffer int
}

// NewStore creates an empty streams database.
func NewStore() *Store {
	return &Store{
		streams: make(map[string]*stream),
		subs:    make(map[int64]*Subscription),
	}
}

// Open creates a Store with the given options, replaying an existing WAL
// file if one is present at opts.WALPath.
func Open(opts Options) (*Store, error) {
	s := NewStore()
	if opts.WALPath != "" {
		if err := s.recover(opts.WALPath); err != nil {
			return nil, err
		}
		w, err := newWALWriter(opts.WALPath)
		if err != nil {
			return nil, err
		}
		s.wal = w
	}
	return s, nil
}

// Close shuts the store down: all subscriptions are cancelled and the WAL,
// if any, is flushed and closed. Appends after Close fail with
// ErrStoreClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	subs := make([]*Subscription, 0, len(s.subs))
	for _, sub := range s.subs {
		subs = append(subs, sub)
	}
	s.subs = make(map[int64]*Subscription)
	wal := s.wal
	s.wal = nil
	s.mu.Unlock()

	for _, sub := range subs {
		sub.stop()
	}
	if wal != nil {
		return wal.Close()
	}
	return nil
}

// CreateStream registers a new stream. Creating an existing id fails with
// ErrStreamExists.
func (s *Store) CreateStream(id string, info StreamInfo) (StreamInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return StreamInfo{}, ErrStoreClosed
	}
	if _, ok := s.streams[id]; ok {
		return StreamInfo{}, fmt.Errorf("%w: %s", ErrStreamExists, id)
	}
	info.ID = id
	info.Closed = false
	info.Len = 0
	info.CreatedTS = s.clock.Add(1)
	st := &stream{info: info}
	s.streams[id] = st
	s.order = append(s.order, id)
	s.stats.StreamsCreated++
	if s.wal != nil {
		if err := s.wal.writeCreate(info); err != nil {
			return StreamInfo{}, err
		}
	}
	if err := s.logRecordLocked(walRecord{Type: "create", Stream: &info}); err != nil {
		return StreamInfo{}, err
	}
	return info, nil
}

// EnsureStream creates the stream if absent and returns its info.
func (s *Store) EnsureStream(id string, info StreamInfo) (StreamInfo, error) {
	got, err := s.CreateStream(id, info)
	if errors.Is(err, ErrStreamExists) {
		return s.Info(id)
	}
	return got, err
}

// Info returns the metadata of a stream.
func (s *Store) Info(id string) (StreamInfo, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.streams[id]
	if !ok {
		return StreamInfo{}, fmt.Errorf("%w: %s", ErrStreamNotFound, id)
	}
	return st.info, nil
}

// List returns info for every stream, in creation order, optionally
// restricted to a session scope (empty session = all).
func (s *Store) List(session string) []StreamInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]StreamInfo, 0, len(s.order))
	for _, id := range s.order {
		st := s.streams[id]
		if session != "" && !scopeContains(session, st.info.Session) {
			continue
		}
		out = append(out, st.info)
	}
	return out
}

// Append writes msg to the stream named by msg.Stream, assigning ID, Seq and
// TS, and delivers it to matching subscribers. The stream must exist and be
// open. The stored message (with assigned fields) is returned.
func (s *Store) Append(msg Message) (Message, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Message{}, ErrStoreClosed
	}
	st, ok := s.streams[msg.Stream]
	if !ok {
		s.mu.Unlock()
		return Message{}, fmt.Errorf("%w: %s", ErrStreamNotFound, msg.Stream)
	}
	if st.info.Closed {
		s.mu.Unlock()
		return Message{}, fmt.Errorf("%w: %s", ErrStreamClosed, msg.Stream)
	}
	if msg.Session == "" {
		msg.Session = st.info.Session
	}
	msg.Seq = st.info.Len
	msg.TS = s.clock.Add(1)
	msg.ID = fmt.Sprintf("m%d", s.nextMsg.Add(1))
	st.msgs = append(st.msgs, msg)
	st.info.Len++
	if msg.IsEOS() {
		st.info.Closed = true
	}
	s.stats.MessagesAppended++
	switch msg.Kind {
	case Control:
		s.stats.ControlMessages++
	case Event:
		s.stats.EventMessages++
	default:
		s.stats.DataMessages++
	}
	var targets []*Subscription
	for _, sub := range s.subs {
		if sub.filter.Matches(&msg) {
			targets = append(targets, sub)
		}
	}
	var walErr error
	if s.wal != nil {
		walErr = s.wal.writeAppend(msg)
	}
	if walErr == nil {
		walErr = s.logRecordLocked(walRecord{Type: "append", Msg: &msg})
	}
	s.mu.Unlock()

	if walErr != nil {
		return Message{}, walErr
	}
	for _, sub := range targets {
		sub.enqueue(msg)
	}
	return msg, nil
}

// Publish is a convenience wrapper creating the stream on demand and
// appending the message.
func (s *Store) Publish(msg Message) (Message, error) {
	if _, err := s.EnsureStream(msg.Stream, StreamInfo{Session: msg.Session, Creator: msg.Sender}); err != nil {
		return Message{}, err
	}
	return s.Append(msg)
}

// CloseStream appends the EOS sentinel, after which appends fail.
func (s *Store) CloseStream(id, sender string) error {
	_, err := s.Append(Message{
		Stream:    id,
		Kind:      Control,
		Sender:    sender,
		Directive: &Directive{Op: OpEOS},
	})
	return err
}

// Read returns up to max messages of the stream starting at offset from
// (max <= 0 means no limit). Messages are copies; mutating them does not
// affect the store.
func (s *Store) Read(id string, from int64, max int) ([]Message, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.streams[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrStreamNotFound, id)
	}
	if from < 0 {
		from = 0
	}
	if from >= int64(len(st.msgs)) {
		return nil, nil
	}
	msgs := st.msgs[from:]
	if max > 0 && max < len(msgs) {
		msgs = msgs[:max]
	}
	out := make([]Message, len(msgs))
	for i := range msgs {
		out[i] = msgs[i].Clone()
	}
	return out, nil
}

// ReadAll returns every message of the stream.
func (s *Store) ReadAll(id string) ([]Message, error) {
	return s.Read(id, 0, 0)
}

// History returns every message in the store whose session is within the
// given scope (empty scope = everything), ordered by global timestamp. It is
// the basis for flow reconstruction (Figs. 9/10) and observability.
func (s *Store) History(session string) []Message {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Message
	for _, id := range s.order {
		st := s.streams[id]
		for i := range st.msgs {
			m := &st.msgs[i]
			if session != "" && !scopeContains(session, m.Session) {
				continue
			}
			out = append(out, m.Clone())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}

// Stats is a snapshot of store counters for observability.
type Stats struct {
	StreamsCreated   int64
	MessagesAppended int64
	DataMessages     int64
	ControlMessages  int64
	EventMessages    int64
	Subscriptions    int64
	Deliveries       int64
	Dropped          int64
}

// StatsSnapshot returns current counters.
func (s *Store) StatsSnapshot() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := s.stats
	st.Subscriptions = int64(len(s.subs))
	return st
}
