package relational

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"unicode"
)

// ---- reference lexer ----
//
// lexRef is a verbatim copy of the slice-building lexer the streaming
// tokenizer replaced. It is kept as the differential oracle: on ASCII input
// the two must agree token for token (the reference decoded runes byte-wise,
// so its behavior on multi-byte UTF-8 was wrong by construction — see the
// UTF-8 tests for the intended divergences).

var refKeywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "IN": true, "LIKE": true, "ORDER": true, "BY": true,
	"ASC": true, "DESC": true, "LIMIT": true, "OFFSET": true, "GROUP": true,
	"HAVING": true, "AS": true, "JOIN": true, "INNER": true, "LEFT": true,
	"ON": true, "INSERT": true, "INTO": true, "VALUES": true, "CREATE": true,
	"TABLE": true, "INDEX": true, "ORDERED": true, "UNIQUE": true, "DROP": true,
	"UPDATE": true, "SET": true, "DELETE": true, "NULL": true, "TRUE": true,
	"FALSE": true, "COUNT": true, "SUM": true, "AVG": true, "MIN": true,
	"MAX": true, "DISTINCT": true, "INT": true, "FLOAT": true, "TEXT": true,
	"BOOL": true, "BETWEEN": true, "IS": true, "EXPLAIN": true,
}

func lexRef(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			for i < n && input[i] != '\n' {
				i++
			}
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			closed := false
			for j < n {
				if input[j] == '\'' {
					if j+1 < n && input[j+1] == '\'' {
						sb.WriteByte('\'')
						j += 2
						continue
					}
					closed = true
					break
				}
				sb.WriteByte(input[j])
				j++
			}
			if !closed {
				return nil, fmt.Errorf("relational: unterminated string at %d", i)
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: i})
			i = j + 1
		case unicode.IsDigit(c) || (c == '.' && i+1 < n && unicode.IsDigit(rune(input[i+1]))):
			j := i
			seenDot := false
			for j < n && (unicode.IsDigit(rune(input[j])) || (input[j] == '.' && !seenDot)) {
				if input[j] == '.' {
					seenDot = true
				}
				j++
			}
			toks = append(toks, token{kind: tokNumber, text: input[i:j], pos: i})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < n && (unicode.IsLetter(rune(input[j])) || unicode.IsDigit(rune(input[j])) || input[j] == '_') {
				j++
			}
			word := input[i:j]
			up := strings.ToUpper(word)
			if refKeywords[up] {
				toks = append(toks, token{kind: tokKeyword, text: up, pos: i})
			} else {
				toks = append(toks, token{kind: tokIdent, text: word, pos: i})
			}
			i = j
		case c == '?':
			toks = append(toks, token{kind: tokParam, text: "?", pos: i})
			i++
		case strings.ContainsRune("=<>!(),*.;", c):
			if (c == '<' || c == '>' || c == '!') && i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{kind: tokOp, text: input[i : i+2], pos: i})
				i += 2
			} else if c == '<' && i+1 < n && input[i+1] == '>' {
				toks = append(toks, token{kind: tokOp, text: "!=", pos: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tokOp, text: string(c), pos: i})
				i++
			}
		default:
			return nil, fmt.Errorf("relational: unexpected character %q at %d", c, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}

// tokenizeAll drains the streaming tokenizer, normalizing string tokens to
// their decoded value so streams compare 1:1 with the reference lexer (which
// unescaped eagerly).
func tokenizeAll(src string) ([]token, error) {
	tz := newTokenizer(src)
	var toks []token
	for {
		t, err := tz.next()
		if err != nil {
			return nil, err
		}
		if t.kind == tokString {
			t = token{kind: tokString, text: t.stringVal(), pos: t.pos}
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}

var tokenizerCorpus = []string{
	`SELECT * FROM jobs`,
	`SELECT id, title FROM jobs WHERE city = 'Oakland' ORDER BY id DESC LIMIT 5 OFFSET 2`,
	`SELECT city, COUNT(*) AS n, AVG(salary) FROM jobs GROUP BY city HAVING COUNT(*) > 2`,
	`SELECT * FROM jobs WHERE salary BETWEEN 95000 AND 105000`,
	`SELECT * FROM jobs WHERE city IN ('Oakland', 'Seattle') AND NOT id = 3`,
	`SELECT a.x, b.y FROM a JOIN b ON a.id = b.id WHERE a.x != b.y`,
	`SELECT a.x FROM a LEFT JOIN b ON a.id = b.id`,
	`INSERT INTO jobs (id, title) VALUES (1, 'it''s a job'), (2, 'plain')`,
	`UPDATE jobs SET salary = salary, title = 'x' WHERE id = 7`,
	`DELETE FROM jobs WHERE id <= 3 OR id >= 9`,
	`CREATE TABLE t (id INT, v TEXT, f FLOAT, b BOOL)`,
	`CREATE ORDERED INDEX ix ON t (id)`,
	`DROP TABLE t`,
	`EXPLAIN SELECT * FROM t WHERE x < 1.5 AND y > .25`,
	`SELECT DISTINCT title FROM jobs WHERE title LIKE 'eng%' AND flag = TRUE OR flag = FALSE`,
	`SELECT * FROM t WHERE v IS NOT NULL AND w IS NULL`,
	`SELECT * FROM t WHERE x = ? AND y <> ?`,
	`select id from jobs where City = 'mixed CASE keywords'`,
	"SELECT id -- trailing comment\nFROM jobs -- another",
	`  ` + "\t\r\n" + `SELECT 1.2.3 ; `,
	``,
	`   `,
	`-- only a comment`,
	`'unterminated`,
	`SELECT 'ok' FROM t WHERE '''' = ''`,
	`SELECT @ FROM t`,
	`SELECT # FROM t`,
	`SELECT - FROM t`,
	`a_b __x x9 _ 9x`,
	`?b?'s'?`,
}

// The streaming tokenizer must agree with the reference lexer, token for
// token and error for error, on all-ASCII input.
func TestTokenizerMatchesReference(t *testing.T) {
	for _, src := range tokenizerCorpus {
		compareStreams(t, src)
	}
}

// Randomized statements: glue together fragments the grammar uses, in
// arbitrary (mostly nonsensical) orders — the tokenizers must still agree.
func TestTokenizerMatchesReferenceRandomized(t *testing.T) {
	frags := []string{
		"SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "IN", "BETWEEN",
		"ORDER", "BY", "LIMIT", "jobs", "id", "salary", "x9", "_tmp",
		"=", "!=", "<", "<=", ">", ">=", "<>", "(", ")", ",", "*", ".", ";",
		"?", "42", "3.14", ".5", "1.2.3", "'str'", "'it''s'", "'unterminated",
		"@", "#", "-", "-- comment", " ", "\t", "\n", "",
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		var sb strings.Builder
		for j := rng.Intn(12); j > 0; j-- {
			sb.WriteString(frags[rng.Intn(len(frags))])
			if rng.Intn(3) != 0 {
				sb.WriteByte(' ')
			}
		}
		compareStreams(t, sb.String())
	}
}

func compareStreams(t *testing.T, src string) {
	t.Helper()
	want, wantErr := lexRef(src)
	got, gotErr := tokenizeAll(src)
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("%q: error mismatch: ref=%v new=%v", src, wantErr, gotErr)
	}
	if wantErr != nil {
		if wantErr.Error() != gotErr.Error() {
			t.Fatalf("%q: error text mismatch:\nref: %v\nnew: %v", src, wantErr, gotErr)
		}
		return
	}
	if len(got) != len(want) {
		t.Fatalf("%q: %d tokens, reference produced %d\nnew: %v\nref: %v", src, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i].kind != want[i].kind || got[i].text != want[i].text || got[i].pos != want[i].pos {
			t.Fatalf("%q: token %d = {%d %q %d}, reference {%d %q %d}",
				src, i, got[i].kind, got[i].text, got[i].pos, want[i].kind, want[i].text, want[i].pos)
		}
	}
}

// The old lexer decoded runes byte-wise (rune(input[i])), so multi-byte
// identifiers broke apart and non-ASCII whitespace started garbage tokens.
// The streaming tokenizer decodes UTF-8 properly.
func TestTokenizerUTF8(t *testing.T) {
	// Accented identifier: one ident token now; the reference lexer ended the
	// word mid-rune and then failed on the orphaned continuation byte.
	toks, err := tokenizeAll(`SELECT nom FROM employés`)
	if err != nil {
		t.Fatalf("accented identifier: %v", err)
	}
	last := toks[len(toks)-2] // before EOF
	if last.kind != tokIdent || last.text != "employés" {
		t.Fatalf("accented identifier token = {%d %q}", last.kind, last.text)
	}
	if _, refErr := lexRef(`SELECT nom FROM employés`); refErr == nil {
		t.Fatal("reference lexer unexpectedly accepted the multi-byte identifier (regression guard is stale)")
	}

	// NBSP is whitespace: the reference treated its lead byte 0xC2 as the
	// letter 'Â' and fabricated an identifier.
	toks, err = tokenizeAll("SELECT id FROM jobs")
	if err != nil {
		t.Fatalf("NBSP separators: %v", err)
	}
	var texts []string
	for _, tk := range toks[:len(toks)-1] {
		texts = append(texts, tk.text)
	}
	if strings.Join(texts, " ") != "SELECT id FROM jobs" {
		t.Fatalf("NBSP separators tokenized as %v", texts)
	}
	refToks, refErr := lexRef("SELECT id")
	if refErr == nil {
		for _, tk := range refToks {
			// The reference saw the NBSP lead byte 0xC2 as the letter 'Â' and
			// glued it onto the preceding word ("SELECT\xc2").
			if tk.kind == tokIdent && strings.Contains(tk.text, "\xc2") {
				goto refConfirmed // the documented byte-wise misbehavior
			}
		}
		t.Fatal("reference lexer no longer shows the byte-wise NBSP bug (regression guard is stale)")
	}
refConfirmed:

	// Ideographic and Greek identifiers work too.
	toks, err = tokenizeAll(`SELECT π FROM 表1`)
	if err != nil {
		t.Fatalf("unicode identifiers: %v", err)
	}
	if toks[1].text != "π" || toks[3].text != "表1" {
		t.Fatalf("unicode identifiers tokenized as %v", toks)
	}

	// Invalid UTF-8 is a lexical error, not a silent latin-1 identifier.
	if _, err := tokenizeAll("SELECT \xff FROM t"); err == nil {
		t.Fatal("invalid UTF-8 accepted")
	}
	// Non-letter non-space runes are rejected with a position.
	if _, err := tokenizeAll("SELECT € FROM t"); err == nil {
		t.Fatal("currency symbol accepted as identifier")
	}
}

// Lexical errors are sticky: next keeps returning the same error without
// advancing, and EOF is idempotent.
func TestTokenizerStickyErrorAndEOF(t *testing.T) {
	tz := newTokenizer(`SELECT @`)
	if tok, err := tz.next(); err != nil || tok.text != "SELECT" {
		t.Fatalf("first token: %v %v", tok, err)
	}
	_, err1 := tz.next()
	_, err2 := tz.next()
	if err1 == nil || err2 == nil || err1.Error() != err2.Error() {
		t.Fatalf("sticky error: %v then %v", err1, err2)
	}

	tz = newTokenizer(`x`)
	tz.next() // ident
	for i := 0; i < 3; i++ {
		tok, err := tz.next()
		if err != nil || tok.kind != tokEOF || tok.pos != 1 {
			t.Fatalf("EOF call %d: %v %v", i, tok, err)
		}
	}
}

func TestTokenizerEscapedStrings(t *testing.T) {
	toks, err := tokenizeAll(`'it''s' 'plain' ''`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"it's", "plain", ""}
	for i, w := range want {
		if toks[i].kind != tokString || toks[i].text != w {
			t.Fatalf("string %d = {%d %q}, want %q", i, toks[i].kind, toks[i].text, w)
		}
	}
	// Raw token (before stringVal) keeps the source slice and the flag.
	tz := newTokenizer(`'it''s'`)
	tok, err := tz.next()
	if err != nil {
		t.Fatal(err)
	}
	if !tok.escaped || tok.text != "it''s" || tok.stringVal() != "it's" {
		t.Fatalf("escaped token = %+v stringVal=%q", tok, tok.stringVal())
	}
}

// A full sweep of a statement must not allocate: token texts are substrings
// or interned keyword spellings.
func TestTokenizeZeroAlloc(t *testing.T) {
	const src = `SELECT id, title, salary FROM jobs WHERE city = 'Oakland' AND salary >= 95000.5 OR id IN (1, 2, 3) ORDER BY salary DESC LIMIT 10 -- done`
	allocs := testing.AllocsPerRun(100, func() {
		tz := newTokenizer(src)
		for {
			tok, err := tz.next()
			if err != nil || tok.kind == tokEOF {
				break
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("tokenize sweep allocates %v times per run, want 0", allocs)
	}
}

// FuzzTokenize cross-checks the streaming tokenizer against the reference
// lexer on ASCII input and asserts structural invariants everywhere: no
// panics, monotone positions, sticky errors, bounded token count.
func FuzzTokenize(f *testing.F) {
	for _, s := range tokenizerCorpus {
		f.Add(s)
	}
	f.Add("SELECT nom FROM employés")
	f.Add("SELECT id")
	f.Add("'a''b''c'")
	f.Add("\xff\xfe")
	f.Fuzz(func(t *testing.T, src string) {
		tz := newTokenizer(src)
		lastPos := -1
		count := 0
		var firstErr error
		for {
			tok, err := tz.next()
			if err != nil {
				firstErr = err
				break
			}
			if tok.pos < lastPos || tok.pos > len(src) {
				t.Fatalf("position went backwards or out of range: %d after %d in %q", tok.pos, lastPos, src)
			}
			lastPos = tok.pos
			if tok.kind == tokEOF {
				break
			}
			if tok.kind == tokString {
				_ = tok.stringVal()
			}
			count++
			if count > len(src)+1 {
				t.Fatalf("more tokens than bytes in %q", src)
			}
		}
		if firstErr != nil {
			if _, err2 := tz.next(); err2 == nil || err2.Error() != firstErr.Error() {
				t.Fatalf("error not sticky: %v then %v", firstErr, err2)
			}
		}
		// Differential check only where the reference's byte-wise rune
		// handling was correct, i.e. pure ASCII input.
		for i := 0; i < len(src); i++ {
			if src[i] >= 0x80 {
				return
			}
		}
		compareStreams(t, src)
	})
}
