package blueprint

import (
	"blueprint/internal/obs"
)

// Ask-level instruments: end-to-end latency of the request/response
// convenience path, the quantiles bpctl top and GET /metrics report.
var (
	mAsks       = obs.Default.Counter("blueprint_asks_total", "session asks (user utterances awaited to a display answer)")
	mAskLatency = obs.Default.Histogram("blueprint_ask_latency_seconds", "end-to-end ask latency, post to display answer", obs.LatencyBuckets)
)

// registerInstruments bridges the pre-existing hand-rolled subsystem stats
// (memo store, relational statement cache, durability engine, session
// manager) into the process-global registry as func-backed instruments:
// /metrics and /stats read one registry instead of assembling ad-hoc maps,
// and the subsystem structs stay the single source of truth. Func-backed
// registration is last-wins, so the most recently constructed System feeds
// the bridges (relevant only to test processes building several Systems).
func (s *System) registerInstruments() {
	r := obs.Default

	// Memoization store (nil-safe: Stats() returns zeros when disabled).
	r.CounterFunc("blueprint_memo_hits_total", "memo lookups served from cache", func() float64 {
		return float64(s.Memo.Stats().Hits)
	})
	r.CounterFunc("blueprint_memo_misses_total", "memo lookups that executed the step", func() float64 {
		return float64(s.Memo.Stats().Misses)
	})
	r.CounterFunc("blueprint_memo_coalesced_total", "memo requests coalesced onto an identical in-flight execution", func() float64 {
		return float64(s.Memo.Stats().Coalesced)
	})
	r.CounterFunc("blueprint_memo_invalidations_total", "memo entries dropped by registry or data-version changes", func() float64 {
		return float64(s.Memo.Stats().Invalidations)
	})
	r.CounterFunc("blueprint_memo_evictions_total", "memo entries dropped by the LRU bound", func() float64 {
		return float64(s.Memo.Stats().Evictions)
	})
	r.CounterFunc("blueprint_memo_restored_total", "memo entries restored by durability recovery", func() float64 {
		return float64(s.Memo.Stats().Restored)
	})
	r.GaugeFunc("blueprint_memo_entries", "resident memo entries", func() float64 {
		return float64(s.Memo.Stats().Entries)
	})

	// Relational statement cache.
	db := s.Enterprise.DB
	r.CounterFunc("blueprint_stmt_cache_hits_total", "statement-cache lookups served without parsing", func() float64 {
		return float64(db.CacheStats().Hits)
	})
	r.CounterFunc("blueprint_stmt_cache_shape_hits_total", "statement-cache hits served by fingerprint shape keys", func() float64 {
		return float64(db.CacheStats().ShapeHits)
	})
	r.CounterFunc("blueprint_stmt_cache_exact_fallbacks_total", "cacheable statements served under exact-text keys", func() float64 {
		return float64(db.CacheStats().ExactFallbacks)
	})
	r.CounterFunc("blueprint_stmt_cache_misses_total", "statement-cache lookups that parsed", func() float64 {
		return float64(db.CacheStats().Misses)
	})
	r.CounterFunc("blueprint_plan_compiles_total", "relational plan compilations", func() float64 {
		return float64(db.CacheStats().Compiles)
	})

	// Durability engine (zeros when durability is disabled).
	r.CounterFunc("blueprint_durability_appends_total", "WAL record appends across all subsystems", func() float64 {
		return float64(s.DurabilityStats().Appends)
	})
	r.CounterFunc("blueprint_durability_fsyncs_total", "group-commit fsyncs", func() float64 {
		return float64(s.DurabilityStats().Fsyncs)
	})
	r.CounterFunc("blueprint_durability_snapshots_total", "snapshots taken", func() float64 {
		return float64(s.DurabilityStats().Snapshots)
	})
	r.GaugeFunc("blueprint_durability_log_bytes", "resident WAL bytes awaiting the next snapshot", func() float64 {
		return float64(s.DurabilityStats().LogBytes)
	})

	// Stream store.
	r.CounterFunc("blueprint_streams_created_total", "streams created", func() float64 {
		return float64(s.Store.StatsSnapshot().StreamsCreated)
	})
	r.CounterFunc("blueprint_stream_messages_total", "messages appended across all streams", func() float64 {
		return float64(s.Store.StatsSnapshot().MessagesAppended)
	})
	r.CounterFunc("blueprint_stream_deliveries_total", "messages delivered to subscribers", func() float64 {
		return float64(s.Store.StatsSnapshot().Deliveries)
	})
	r.GaugeFunc("blueprint_stream_subscriptions", "live stream subscriptions", func() float64 {
		return float64(s.Store.StatsSnapshot().Subscriptions)
	})

	// Sessions.
	r.GaugeFunc("blueprint_sessions_open", "open sessions", func() float64 {
		return float64(len(s.Sessions.List()))
	})

	// Attribution plane: SLO burn rates as labeled gauges, plus the event
	// log's and flight recorder's ring occupancy (their capacity bound is
	// part of the A12 floor).
	r.SLOFunc("blueprint_slo_burn_rate", "error-budget burn rate per tenant/agent series and window (1.0 = burning exactly the budget)", s.SLO)
	r.GaugeFunc("blueprint_events_retained", "events retained in the bounded event ring", func() float64 {
		return float64(obs.Events.Len())
	})
	r.CounterFunc("blueprint_events_seq", "events emitted since process start (ring sequence head)", func() float64 {
		return float64(obs.Events.Seq())
	})
	r.CounterFunc("blueprint_slow_ask_captures_total", "asks captured by the flight recorder (slow, error, degraded or shed)", func() float64 {
		return float64(obs.SlowAsks.Captures())
	})
	r.GaugeFunc("blueprint_slow_ask_exemplars", "exemplars retained in the flight recorder ring", func() float64 {
		return float64(obs.SlowAsks.Len())
	})
	r.GaugeFunc("blueprint_trace_sessions", "session span rings retained by the tracer", func() float64 {
		return float64(obs.Spans.SessionCount())
	})

	// Resilience: breaker states and governor occupancy (the counters —
	// trips, rejections, sheds, degraded answers — are package-level in
	// internal/resilience; these gauges read this System's instances and
	// are nil-safe when breakers or the governor are disabled).
	r.GaugeFunc("blueprint_breakers_open", "agents whose circuit breaker is open or half-open", func() float64 {
		return float64(s.Breakers.OpenCount())
	})
	r.GaugeFunc("blueprint_governor_inflight", "governed asks holding admission slots", func() float64 {
		return float64(s.Governor.Stats().InFlight)
	})
	r.GaugeFunc("blueprint_governor_queued", "governed asks waiting for an admission slot", func() float64 {
		return float64(s.Governor.Stats().Queued)
	})
}
