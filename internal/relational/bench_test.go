package relational

import (
	"fmt"
	"testing"
)

func benchDB(b *testing.B, rows int, withIndex bool) *DB {
	b.Helper()
	db := NewDB()
	if _, err := db.Exec(`CREATE TABLE jobs (id INT, title TEXT, city TEXT, salary INT)`); err != nil {
		b.Fatal(err)
	}
	if withIndex {
		if _, err := db.Exec(`CREATE INDEX ic ON jobs (city)`); err != nil {
			b.Fatal(err)
		}
		if _, err := db.Exec(`CREATE ORDERED INDEX isal ON jobs (salary)`); err != nil {
			b.Fatal(err)
		}
	}
	cities := []string{"San Francisco", "Oakland", "Seattle", "New York", "Austin"}
	titles := []string{"Data Scientist", "ML Engineer", "Analyst"}
	for i := 0; i < rows; i++ {
		if _, err := db.Exec(`INSERT INTO jobs VALUES (?, ?, ?, ?)`,
			i, titles[i%len(titles)], cities[i%len(cities)], 90000+(i%160)*1000); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

func BenchmarkInsert(b *testing.B) {
	db := NewDB()
	if _, err := db.Exec(`CREATE TABLE t (a INT, s TEXT)`); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(`INSERT INTO t VALUES (?, ?)`, i, "payload"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPointQuerySeqScan(b *testing.B) {
	db := benchDB(b, 5000, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(`SELECT id FROM jobs WHERE city = 'Oakland' LIMIT 5`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPointQueryHashIndex(b *testing.B) {
	db := benchDB(b, 5000, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(`SELECT id FROM jobs WHERE city = 'Oakland' LIMIT 5`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRangeQueryOrderedIndex(b *testing.B) {
	db := benchDB(b, 5000, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(`SELECT id FROM jobs WHERE salary BETWEEN 200000 AND 210000`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGroupByAggregate(b *testing.B) {
	db := benchDB(b, 5000, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(`SELECT city, AVG(salary) FROM jobs GROUP BY city`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashJoin(b *testing.B) {
	db := benchDB(b, 2000, false)
	if _, err := db.Exec(`CREATE TABLE companies (id INT, name TEXT)`); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := db.Exec(`INSERT INTO companies VALUES (?, ?)`, i, fmt.Sprintf("co%d", i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(`SELECT j.title, c.name FROM jobs j JOIN companies c ON j.id = c.id`); err != nil {
			b.Fatal(err)
		}
	}
}

// benchIDIndexedDB builds a jobs table with a hash index on id so point
// queries isolate the parse-versus-execute split the statement cache
// amortizes.
func benchIDIndexedDB(b *testing.B, rows int) *DB {
	b.Helper()
	db := benchDB(b, rows, false)
	if _, err := db.Exec(`CREATE INDEX iid ON jobs (id)`); err != nil {
		b.Fatal(err)
	}
	return db
}

const pointQuery = `SELECT title FROM jobs WHERE id = ? LIMIT 1`

// BenchmarkPointQueryUncached is the re-parse baseline: every call lexes and
// parses the SQL text again (statement cache disabled).
func BenchmarkPointQueryUncached(b *testing.B) {
	db := benchIDIndexedDB(b, 5000)
	db.SetStmtCacheCapacity(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(pointQuery, i%5000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPointQueryCached exercises the transparent statement cache that
// Query consults by default.
func BenchmarkPointQueryCached(b *testing.B) {
	db := benchIDIndexedDB(b, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(pointQuery, i%5000); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	stats := db.CacheStats()
	b.ReportMetric(stats.HitRate()*100, "hit%")
}

// BenchmarkPointQueryPrepared uses the explicit prepared-statement handle:
// parse once, execute b.N times.
func BenchmarkPointQueryPrepared(b *testing.B) {
	db := benchIDIndexedDB(b, 5000)
	st, err := db.Prepare(pointQuery)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Query(i % 5000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInsertUncached is the re-parse baseline for BenchmarkInsert
// (which runs with the default statement cache): together they measure the
// DML write path with and without parse amortization.
func BenchmarkInsertUncached(b *testing.B) {
	db := NewDB()
	if _, err := db.Exec(`CREATE TABLE t (a INT, s TEXT)`); err != nil {
		b.Fatal(err)
	}
	db.SetStmtCacheCapacity(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(`INSERT INTO t VALUES (?, ?)`, i, "payload"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseSelect(b *testing.B) {
	const q = `SELECT city, COUNT(*) AS n, AVG(salary) FROM jobs WHERE salary > 100000 AND title LIKE '%data%' GROUP BY city ORDER BY n DESC LIMIT 10`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}
