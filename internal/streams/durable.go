package streams

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Durability on the shared engine: the store's original stand-alone JSON
// WAL (Options.WALPath, one file per store) is migrated onto the
// durability engine's segmented, CRC-framed log — the record bodies stay
// the same JSON documents (walRecord), but framing, rotation, group
// commit, snapshots and truncation are the engine's, and one DataDir holds
// every subsystem. The legacy single-file mode keeps working for
// applications that only want stream persistence.
//
// Replay is idempotent: append records carry their assigned Seq, so a
// record whose message is already present (because the snapshot covered
// it) is skipped — which is what lets the store log with a plain
// asynchronous Append instead of the engine's snapshot-atomic Log path.

// SetDurable attaches the shared-engine sink. Attach before serving
// traffic; CreateStream and Append then log every mutation through it.
func (s *Store) SetDurable(log func(payload []byte) error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sink = log
}

// logRecordLocked marshals and appends one record; caller holds s.mu.
func (s *Store) logRecordLocked(rec walRecord) error {
	if s.sink == nil {
		return nil
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("streams: encode wal record: %w", err)
	}
	return s.sink(b)
}

// applyRecordLocked loads one WAL record into the store, idempotently;
// caller holds s.mu. Shared by legacy WAL recovery, engine replay (Apply)
// and snapshot load (Restore).
func (s *Store) applyRecordLocked(rec walRecord) {
	switch rec.Type {
	case "create":
		if rec.Stream == nil {
			return
		}
		info := *rec.Stream
		if _, ok := s.streams[info.ID]; ok {
			return // already present (snapshot covered it)
		}
		st := &stream{info: info}
		st.info.Len = 0
		st.info.Closed = false
		s.streams[info.ID] = st
		s.order = append(s.order, info.ID)
		s.stats.StreamsCreated++
		if info.CreatedTS > s.clock.Load() {
			s.clock.Store(info.CreatedTS)
		}
	case "append":
		if rec.Msg == nil {
			return
		}
		m := *rec.Msg
		st, ok := s.streams[m.Stream]
		if !ok {
			return
		}
		if m.Seq < st.info.Len {
			return // already present (snapshot covered it)
		}
		m.Seq = st.info.Len
		st.msgs = append(st.msgs, m)
		st.info.Len++
		if m.IsEOS() {
			st.info.Closed = true
		}
		s.stats.MessagesAppended++
		switch m.Kind {
		case Control:
			s.stats.ControlMessages++
		case Event:
			s.stats.EventMessages++
		default:
			s.stats.DataMessages++
		}
		if m.TS > s.clock.Load() {
			s.clock.Store(m.TS)
		}
		var n int64
		if _, err := fmt.Sscanf(m.ID, "m%d", &n); err == nil && n > s.nextMsg.Load() {
			s.nextMsg.Store(n)
		}
	}
}

// Apply replays one engine log record. It implements durability.Loggable.
func (s *Store) Apply(rec []byte) error {
	var r walRecord
	if err := json.Unmarshal(rec, &r); err != nil {
		return fmt.Errorf("streams: decode wal record: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.applyRecordLocked(r)
	return nil
}

// Snapshot serializes every stream and message as a replayable record
// sequence. It implements durability.Loggable.
func (s *Store) Snapshot(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	bw := bufio.NewWriterSize(w, 1<<16)
	enc := json.NewEncoder(bw)
	for _, id := range s.order {
		st := s.streams[id]
		info := st.info
		if err := enc.Encode(walRecord{Type: "create", Stream: &info}); err != nil {
			return err
		}
		for i := range st.msgs {
			if err := enc.Encode(walRecord{Type: "append", Msg: &st.msgs[i]}); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Restore loads a Snapshot into the (fresh) store. It implements
// durability.Loggable.
func (s *Store) Restore(r io.Reader) error {
	dec := json.NewDecoder(bufio.NewReaderSize(r, 1<<16))
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		var rec walRecord
		if err := dec.Decode(&rec); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("streams: decode snapshot: %w", err)
		}
		s.applyRecordLocked(rec)
	}
}
