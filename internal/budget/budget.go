// Package budget implements the blueprint's QoS budget (§IV, §V-H):
// "records of the current and projected QoS stats to guide execution and
// planning". The task coordinator charges every agent invocation against the
// session budget and checks projections before dispatching further steps;
// violations trigger aborts, replanning or user confirmation.
package budget

import (
	"fmt"
	"sync"
	"time"

	"blueprint/internal/obs"
)

// Process-wide admission-outcome instruments: how often steps reserve
// headroom, get rejected at admission, commit actuals, release unused
// reservations, or ride free on a memo hit.
var (
	mReserves          = obs.Default.Counter("blueprint_budget_reserves_total", "successful budget reservations (step admissions)")
	mReserveRejections = obs.Default.Counter("blueprint_budget_reserve_rejections_total", "budget reservations rejected at admission")
	mCommits           = obs.Default.Counter("blueprint_budget_commits_total", "reservations committed with step actuals")
	mReleases          = obs.Default.Counter("blueprint_budget_releases_total", "reservations released without charging (failed or cancelled steps)")
	mMemoCharges       = obs.Default.Counter("blueprint_budget_memo_charges_total", "steps charged as memo hits (zero cost and latency)")
	mRetryCharges      = obs.Default.Counter("blueprint_budget_retry_backoff_charges_total", "retry backoff sleeps charged against latency budgets")
)

// Limits are the QoS constraints of one task execution.
type Limits struct {
	// MaxCost in dollars (0 = unlimited).
	MaxCost float64
	// MaxLatency caps the execution latency charged to the budget
	// (0 = unlimited). Under the coordinator's concurrent scheduler each
	// step charges its marginal growth of the plan's critical path over
	// actual step latencies, so the dimension tracks end-to-end plan
	// latency: overlapping parallel steps do not double-count, and the
	// optimizer's critical-path projection and the actual enforcement
	// agree in units.
	MaxLatency time.Duration
	// MinAccuracy is the lowest acceptable running accuracy estimate
	// (0 = don't care).
	MinAccuracy float64
}

// Dimension names a QoS axis.
type Dimension string

// QoS dimensions.
const (
	DimCost     Dimension = "cost"
	DimLatency  Dimension = "latency"
	DimAccuracy Dimension = "accuracy"
)

// Violation records one exceeded constraint.
type Violation struct {
	Dimension Dimension
	// Actual and Limit are rendered per-dimension (dollars, duration,
	// probability).
	Actual string
	Limit  string
	// Step names the plan step that tripped the limit.
	Step string
}

// String renders the violation.
func (v Violation) String() string {
	return fmt.Sprintf("budget violation on %s at step %q: %s exceeds limit %s", v.Dimension, v.Step, v.Actual, v.Limit)
}

// Budget tracks actuals against limits. All methods are safe for concurrent
// use. With the concurrent scheduler, several steps charge one budget in
// parallel; the Reserve/Commit path makes the admission check atomic, so two
// in-flight steps cannot each pass a WouldExceed-style check and then
// jointly overshoot the limit.
type Budget struct {
	mu              sync.Mutex
	limits          Limits
	cost            float64
	latency         time.Duration
	reservedCost    float64
	reservedLatency time.Duration
	accSum          float64
	accWeight       float64
	charges         int
	memoHits        int
	retries         int
	violations      []Violation
}

// New creates a budget with the given limits.
func New(limits Limits) *Budget {
	return &Budget{limits: limits}
}

// Limits returns the configured limits.
func (b *Budget) Limits() Limits {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.limits
}

// Charge records the actuals of one step and returns the violations it
// caused (nil when within budget). Accuracy contributes to a cost-weighted
// running estimate: expensive steps influence the estimate more.
func (b *Budget) Charge(step string, cost float64, latency time.Duration, accuracy float64) []Violation {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.chargeLocked(step, cost, latency, accuracy)
}

func (b *Budget) chargeLocked(step string, cost float64, latency time.Duration, accuracy float64) []Violation {
	b.cost += cost
	b.latency += latency
	b.charges++
	if accuracy > 0 {
		w := cost
		if w <= 0 {
			w = 1e-6
		}
		b.accSum += accuracy * w
		b.accWeight += w
	}
	var out []Violation
	if b.limits.MaxCost > 0 && b.cost > b.limits.MaxCost {
		out = append(out, Violation{
			Dimension: DimCost, Step: step,
			Actual: fmt.Sprintf("$%.4f", b.cost),
			Limit:  fmt.Sprintf("$%.4f", b.limits.MaxCost),
		})
	}
	if b.limits.MaxLatency > 0 && b.latency > b.limits.MaxLatency {
		out = append(out, Violation{
			Dimension: DimLatency, Step: step,
			Actual: b.latency.String(),
			Limit:  b.limits.MaxLatency.String(),
		})
	}
	if acc, ok := b.accuracyLocked(); ok && b.limits.MinAccuracy > 0 && acc < b.limits.MinAccuracy {
		out = append(out, Violation{
			Dimension: DimAccuracy, Step: step,
			Actual: fmt.Sprintf("%.3f", acc),
			Limit:  fmt.Sprintf("%.3f", b.limits.MinAccuracy),
		})
	}
	b.violations = append(b.violations, out...)
	return out
}

// ChargeMemoHit records a step satisfied from the memoization cache: zero
// cost and zero marginal critical-path latency are charged — a hit consumes
// no headroom, so admission (Reserve/WouldExceed) is bypassed entirely —
// while the accuracy estimate still absorbs the executing agent's profile
// and the charge is counted (Report.MemoHits). Violations can still result
// when a low-accuracy cached result drags the running estimate under
// MinAccuracy.
func (b *Budget) ChargeMemoHit(step string, accuracy float64) []Violation {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.memoHits++
	mMemoCharges.Inc()
	return b.chargeLocked(step, 0, 0, accuracy)
}

// ChargeRetryBackoff charges a retry's backoff sleep against the latency
// budget: a plan that retries pays for its own waiting, so retries can never
// push an execution past its declared latency SLO unnoticed. No cost is
// charged (a sleep invokes no agent) and the charge does not count toward
// Charges; it surfaces as Report.Retries. Returns the violations the charge
// caused — a plan out of latency headroom learns here to stop retrying.
func (b *Budget) ChargeRetryBackoff(step string, backoff time.Duration) []Violation {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.retries++
	mRetryCharges.Inc()
	b.latency += backoff
	var out []Violation
	if b.limits.MaxLatency > 0 && b.latency > b.limits.MaxLatency {
		out = append(out, Violation{
			Dimension: DimLatency, Step: step,
			Actual: b.latency.String(),
			Limit:  b.limits.MaxLatency.String(),
		})
	}
	b.violations = append(b.violations, out...)
	return out
}

// Reservation holds pre-authorized cost/latency headroom for one in-flight
// step. Commit it with the step's actuals, or Release it when the step never
// ran. The reservation's projected amounts count against the limits for
// every other Reserve/WouldExceed call while it is outstanding.
type Reservation struct {
	b       *Budget
	step    string
	cost    float64
	latency time.Duration
	done    bool // guarded by b.mu
}

// Reserve atomically checks that the projected cost/latency of a step fits
// under the limits — counting actuals already charged plus all outstanding
// reservations — and claims the headroom. When it does not fit, Reserve
// claims nothing and returns the would-be violations so the coordinator can
// apply its policy. This is the admission path for concurrently dispatched
// steps: two goroutines racing Reserve can never jointly overshoot a limit.
func (b *Budget) Reserve(step string, cost float64, latency time.Duration) (*Reservation, []Violation) {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []Violation
	if b.limits.MaxCost > 0 && b.cost+b.reservedCost+cost > b.limits.MaxCost {
		out = append(out, Violation{
			Dimension: DimCost, Step: step,
			Actual: fmt.Sprintf("$%.4f projected", b.cost+b.reservedCost+cost),
			Limit:  fmt.Sprintf("$%.4f", b.limits.MaxCost),
		})
	}
	if b.limits.MaxLatency > 0 && b.latency+b.reservedLatency+latency > b.limits.MaxLatency {
		out = append(out, Violation{
			Dimension: DimLatency, Step: step,
			Actual: (b.latency + b.reservedLatency + latency).String() + " projected",
			Limit:  b.limits.MaxLatency.String(),
		})
	}
	if len(out) > 0 {
		mReserveRejections.Inc()
		return nil, out
	}
	mReserves.Inc()
	b.reservedCost += cost
	b.reservedLatency += latency
	return &Reservation{b: b, step: step, cost: cost, latency: latency}, nil
}

// Commit releases the reservation and charges the step's actuals in one
// atomic transition, returning any violations the actuals caused (actuals
// may legitimately exceed the reserved projection). Committing twice, or
// after Release, charges nothing. A nil reservation is a no-op.
func (r *Reservation) Commit(cost float64, latency time.Duration, accuracy float64) []Violation {
	if r == nil {
		return nil
	}
	r.b.mu.Lock()
	defer r.b.mu.Unlock()
	if r.done {
		return nil
	}
	mCommits.Inc()
	r.releaseLocked()
	return r.b.chargeLocked(r.step, cost, latency, accuracy)
}

// Release returns the reserved headroom without charging anything (the step
// failed or was cancelled before completing). Safe to call twice or on nil.
func (r *Reservation) Release() {
	if r == nil {
		return
	}
	r.b.mu.Lock()
	defer r.b.mu.Unlock()
	if !r.done {
		mReleases.Inc()
	}
	r.releaseLocked()
}

func (r *Reservation) releaseLocked() {
	if r.done {
		return
	}
	r.done = true
	r.b.reservedCost -= r.cost
	r.b.reservedLatency -= r.latency
}

// WouldExceed reports whether adding the projected cost/latency would break
// the limits — the coordinator's pre-dispatch projection check. Outstanding
// reservations count as spent.
func (b *Budget) WouldExceed(projCost float64, projLatency time.Duration) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.limits.MaxCost > 0 && b.cost+b.reservedCost+projCost > b.limits.MaxCost {
		return true
	}
	if b.limits.MaxLatency > 0 && b.latency+b.reservedLatency+projLatency > b.limits.MaxLatency {
		return true
	}
	return false
}

// Remaining reports how much cost and latency headroom is left (zero values
// when the dimension is unlimited). Outstanding reservations are not
// available headroom, so they count as spent.
func (b *Budget) Remaining() (cost float64, latency time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.limits.MaxCost > 0 {
		cost = b.limits.MaxCost - b.cost - b.reservedCost
		if cost < 0 {
			cost = 0
		}
	}
	if b.limits.MaxLatency > 0 {
		latency = b.limits.MaxLatency - b.latency - b.reservedLatency
		if latency < 0 {
			latency = 0
		}
	}
	return cost, latency
}

func (b *Budget) accuracyLocked() (float64, bool) {
	if b.accWeight == 0 {
		return 0, false
	}
	return b.accSum / b.accWeight, true
}

// Report is a budget snapshot.
type Report struct {
	CostSpent float64
	Latency   time.Duration
	Accuracy  float64 // running estimate; 0 when unknown
	Charges   int
	// MemoHits counts charges that were memoization hits (zero cost/latency).
	MemoHits int
	// Retries counts retry backoff sleeps charged to the latency budget.
	Retries      int
	Violations   []Violation
	CostLimit    float64
	LatencyLimit time.Duration
	// CostReserved/LatencyReserved are the outstanding (uncommitted)
	// reservations of in-flight steps at snapshot time.
	CostReserved    float64
	LatencyReserved time.Duration
}

// Snapshot returns the current report.
func (b *Budget) Snapshot() Report {
	b.mu.Lock()
	defer b.mu.Unlock()
	acc, _ := b.accuracyLocked()
	return Report{
		CostSpent:       b.cost,
		Latency:         b.latency,
		Accuracy:        acc,
		Charges:         b.charges,
		MemoHits:        b.memoHits,
		Retries:         b.retries,
		Violations:      append([]Violation(nil), b.violations...),
		CostLimit:       b.limits.MaxCost,
		LatencyLimit:    b.limits.MaxLatency,
		CostReserved:    b.reservedCost,
		LatencyReserved: b.reservedLatency,
	}
}

// Violated reports whether any violation has occurred.
func (b *Budget) Violated() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.violations) > 0
}
