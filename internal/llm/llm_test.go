package llm

import (
	"strings"
	"testing"
	"time"
)

func perfect(tier Tier) *Model {
	cfg := Config{Name: "t-" + string(tier), Tier: tier, CostPer1K: 0.01, BaseLatency: 10 * time.Millisecond, PerToken: time.Millisecond, Accuracy: 1.0, Seed: 7}
	return New(cfg, nil)
}

func TestPresetsOrdering(t *testing.T) {
	ps := Presets(1)
	if len(ps) != 3 {
		t.Fatalf("presets = %d", len(ps))
	}
	if !(ps[0].CostPer1K < ps[1].CostPer1K && ps[1].CostPer1K < ps[2].CostPer1K) {
		t.Fatal("cost ordering broken")
	}
	if !(ps[0].Accuracy < ps[1].Accuracy && ps[1].Accuracy < ps[2].Accuracy) {
		t.Fatal("accuracy ordering broken")
	}
	if !(ps[0].BaseLatency < ps[1].BaseLatency && ps[1].BaseLatency < ps[2].BaseLatency) {
		t.Fatal("latency ordering broken")
	}
}

func TestDeterminism(t *testing.T) {
	m := New(Presets(42)[0], nil)
	a1, u1 := m.KnowledgeList("cities in the sf bay area")
	a2, u2 := m.KnowledgeList("cities in the sf bay area")
	if strings.Join(a1, "|") != strings.Join(a2, "|") {
		t.Fatalf("nondeterministic: %v vs %v", a1, a2)
	}
	if u1 != u2 {
		t.Fatalf("usage differs: %+v vs %+v", u1, u2)
	}
	// Different seeds may differ (not asserted strictly), but same seed in a
	// fresh model must match.
	m2 := New(Presets(42)[0], nil)
	a3, _ := m2.KnowledgeList("cities in the sf bay area")
	if strings.Join(a1, "|") != strings.Join(a3, "|") {
		t.Fatal("fresh model with same seed differs")
	}
}

func TestKnowledgeListPerfectAccuracy(t *testing.T) {
	m := perfect(TierLarge)
	cities, usage := m.KnowledgeList("cities in the sf bay area")
	if len(cities) != 10 {
		t.Fatalf("cities = %v", cities)
	}
	if usage.Degraded {
		t.Fatal("perfect model degraded")
	}
	if usage.Cost <= 0 || usage.Latency <= 0 {
		t.Fatalf("usage = %+v", usage)
	}
	titles, _ := m.KnowledgeList("titles related to data scientist")
	if len(titles) != 5 || titles[0] != "Data Scientist" {
		t.Fatalf("titles = %v", titles)
	}
	skills, _ := m.KnowledgeList("skills for ml engineer")
	if len(skills) == 0 {
		t.Fatalf("skills = %v", skills)
	}
	if out, _ := m.KnowledgeList("cities in atlantis"); out != nil {
		t.Fatalf("unknown region = %v", out)
	}
}

func TestDegradationRate(t *testing.T) {
	cfg := Config{Name: "flaky", Tier: TierSmall, CostPer1K: 0.001, Accuracy: 0.5, Seed: 3}
	m := New(cfg, nil)
	degraded := 0
	const n = 400
	for i := 0; i < n; i++ {
		_, u := m.KnowledgeList("cities in the sf bay area query variant " + strings.Repeat("x", i%7) + string(rune('a'+i%26)))
		if u.Degraded {
			degraded++
		}
	}
	rate := float64(degraded) / n
	if rate < 0.35 || rate > 0.65 {
		t.Fatalf("degradation rate = %.2f, want ~0.5", rate)
	}
}

func TestDegradedListDropsItems(t *testing.T) {
	cfg := Config{Name: "always-bad", Tier: TierSmall, CostPer1K: 0.001, Accuracy: 0.0, Seed: 3}
	m := New(cfg, nil)
	cities, u := m.KnowledgeList("cities in the sf bay area")
	if !u.Degraded {
		t.Fatal("accuracy 0 must degrade")
	}
	// One true item dropped; possibly one hallucination added.
	if len(cities) > 10 {
		t.Fatalf("degraded list grew: %v", cities)
	}
	truth := map[string]bool{}
	for _, c := range DefaultKnowledgeBase().CitiesIn("sf bay area") {
		truth[c] = true
	}
	missing := 0
	for _, c := range DefaultKnowledgeBase().CitiesIn("sf bay area") {
		found := false
		for _, got := range cities {
			if got == c {
				found = true
			}
		}
		if !found {
			missing++
		}
	}
	if missing == 0 {
		t.Fatal("degraded call should drop at least one true city")
	}
}

func TestClassifyIntents(t *testing.T) {
	m := perfect(TierMedium)
	labels := []string{"job_search", "summarize", "rank", "open_query"}
	cases := []struct {
		text string
		want string
	}{
		{"I am looking for a data scientist position in SF bay area.", "job_search"},
		{"Summarize the applicants for job 12", "summarize"},
		{"Rank the top candidates by experience", "rank"},
		{"How many applicants have Python skills?", "open_query"},
		{"blargh nonsense", "open_query"}, // fallback = last label
	}
	for _, c := range cases {
		got, u := m.Classify(c.text, labels)
		if got != c.want {
			t.Errorf("Classify(%q) = %q, want %q", c.text, got, c.want)
		}
		if u.InputTokens == 0 {
			t.Errorf("no input tokens metered for %q", c.text)
		}
	}
	if got, _ := m.Classify("anything", nil); got != "" {
		t.Fatalf("empty labels = %q", got)
	}
}

func TestExtract(t *testing.T) {
	m := perfect(TierLarge)
	out, _ := m.Extract("criteria", "I am looking for a data scientist position in SF bay area.")
	if out != "data scientist position in SF bay area" {
		t.Fatalf("criteria = %q", out)
	}
	out, _ = m.Extract("title", "senior data scientist roles near Oakland")
	if out != "data scientist" {
		t.Fatalf("title = %q", out)
	}
	out, _ = m.Extract("location", "data scientist position in SF bay area")
	if out != "sf bay area" {
		t.Fatalf("location = %q", out)
	}
	out, _ = m.Extract("location", "jobs in Berkeley please")
	if out != "Berkeley" {
		t.Fatalf("city fallback = %q", out)
	}
	out, _ = m.Extract("location", "anywhere on mars")
	if out != "" {
		t.Fatalf("unknown location = %q", out)
	}
}

func TestExtractDegradedTruncates(t *testing.T) {
	cfg := Config{Name: "bad", Accuracy: 0, Seed: 1, CostPer1K: 0.001}
	m := New(cfg, nil)
	out, u := m.Extract("criteria", "I am looking for a data scientist position in SF bay area.")
	if !u.Degraded {
		t.Fatal("must degrade")
	}
	if out == "data scientist position in SF bay area" {
		t.Fatal("degraded extract identical to perfect output")
	}
}

func TestSummarize(t *testing.T) {
	m := perfect(TierMedium)
	long := strings.Repeat("applicant with strong background ", 30)
	out, u := m.Summarize(long, 10)
	if !strings.HasPrefix(out, "Summary: ") {
		t.Fatalf("summary = %q", out)
	}
	if CountTokens(out) > 12 { // "Summary:" + 10 words
		t.Fatalf("summary too long: %q", out)
	}
	if u.OutputTokens == 0 {
		t.Fatal("no output metered")
	}
	// Default max words.
	out2, _ := m.Summarize("short text", 0)
	if !strings.Contains(out2, "short text") {
		t.Fatalf("default = %q", out2)
	}
}

func TestGenerate(t *testing.T) {
	m := perfect(TierLarge)
	out, _ := m.Generate("list cities in the sf bay area")
	if !strings.Contains(out, "San Francisco") || !strings.Contains(out, "Berkeley") {
		t.Fatalf("list generate = %q", out)
	}
	out, _ = m.Generate("give me career advice for a data scientist")
	if !strings.Contains(out, "python") {
		t.Fatalf("advice = %q", out)
	}
	out, _ = m.Generate("explain the results")
	if !strings.Contains(out, "data sources") {
		t.Fatalf("explain = %q", out)
	}
	out, _ = m.Generate("random prompt")
	if out == "" {
		t.Fatal("empty generate")
	}
}

func TestScore(t *testing.T) {
	m := perfect(TierLarge)
	hi, _ := m.Score("data scientist python sql", "Data Scientist with python and sql experience")
	lo, _ := m.Score("data scientist python sql", "Janitorial staff opening")
	if hi <= lo {
		t.Fatalf("score ordering: hi=%v lo=%v", hi, lo)
	}
	if hi < 0 || hi > 1 || lo < 0 || lo > 1 {
		t.Fatalf("scores out of range: %v %v", hi, lo)
	}
	z, _ := m.Score("", "anything")
	if z != 0 {
		t.Fatalf("empty query score = %v", z)
	}
}

func TestUsageCostModel(t *testing.T) {
	cfg := Config{Name: "m", CostPer1K: 0.01, BaseLatency: 100 * time.Millisecond, PerToken: time.Millisecond, Accuracy: 1, Seed: 1}
	m := New(cfg, nil)
	_, u := m.Summarize("one two three four", 10)
	wantTokens := 4 + u.OutputTokens
	wantCost := float64(wantTokens) / 1000 * 0.01
	if u.InputTokens != 4 {
		t.Fatalf("input tokens = %d", u.InputTokens)
	}
	if u.Cost != wantCost {
		t.Fatalf("cost = %v, want %v", u.Cost, wantCost)
	}
	wantLatency := 100*time.Millisecond + time.Duration(u.OutputTokens)*time.Millisecond
	if u.Latency != wantLatency {
		t.Fatalf("latency = %v, want %v", u.Latency, wantLatency)
	}
}

func TestKnowledgeBaseHelpers(t *testing.T) {
	kb := DefaultKnowledgeBase()
	if len(kb.Regions()) < 4 {
		t.Fatalf("regions = %v", kb.Regions())
	}
	if got := kb.CitiesIn("positions in the SF Bay Area please"); len(got) != 10 {
		t.Fatalf("cities = %v", got)
	}
	if got := kb.CitiesIn("atlantis"); got != nil {
		t.Fatalf("unknown = %v", got)
	}
	if got := kb.RelatedTitles("senior data scientist"); len(got) == 0 {
		t.Fatalf("titles = %v", got)
	}
	if got := kb.SkillsFor("software engineer"); len(got) == 0 {
		t.Fatalf("skills = %v", got)
	}
	if _, ok := kb.IsListQuery("list the cities in seattle area"); !ok {
		t.Fatal("list query not detected")
	}
	if _, ok := kb.IsListQuery("hello there"); ok {
		t.Fatal("non-list query detected as list")
	}
}

func TestCountTokens(t *testing.T) {
	if CountTokens("") != 0 || CountTokens("a b  c") != 3 {
		t.Fatal("token counting broken")
	}
}
