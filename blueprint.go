// Package blueprint is a complete Go implementation of the compound-AI
// blueprint architecture of "Orchestrating Agents and Data for Enterprise"
// (Kandogan et al., ICDE 2025): streams orchestrating data and control
// among agents, agent and data registries mapping enterprise models and
// sources, task and data planners, a budget-aware task coordinator, and a
// multi-objective optimizer — together with an embedded enterprise substrate
// (relational engine, document store, graph store, KV store, simulated LLM)
// and the paper's HR case study (Agentic Employer, Career Assistant).
//
// The System type wires everything; Session provides the conversational
// surface:
//
//	sys, _ := blueprint.New(blueprint.Config{})
//	defer sys.Close()
//	s, _ := sys.StartSession("")
//	answer, _ := s.Ask("How many jobs are in San Francisco?", 5*time.Second)
//
// # Relational hot path and the statement cache
//
// The embedded relational engine (internal/relational) backs every
// NLQ->SQL and data-plan turn, so its fixed per-query costs are the
// system's hottest path. The engine amortizes lexing and parsing with a
// bounded, concurrency-safe LRU statement cache consulted transparently by
// DB.Query and DB.Exec; DB.Prepare returns an explicit reusable *Stmt for
// templated queries (the agent suite prepares its fixed SQL once per
// session). Any DDL — CREATE/DROP TABLE, CREATE INDEX — flushes the cached
// statements referencing the altered table (other tables' statements stay
// resident), so no stale plan survives a schema change.
//
// Beyond parse amortization, SELECT/UPDATE/DELETE are compiled at prepare
// time (internal/relational/compile.go): every column reference is resolved
// to a positional offset once and the expression trees are lowered into
// closures, so per-row evaluation does no string matching and no AST
// dispatch; hash joins, GROUP BY, DISTINCT and COUNT(DISTINCT) key their
// tables through an allocation-free binary encoder, and ORDER BY + LIMIT
// runs through a bounded top-k heap. Compiled plans ride on *Stmt handles
// and in the statement cache, invalidated per table by schema versions
// (CREATE/DROP TABLE recompiles; CREATE INDEX is picked up by the runtime
// access-path planner without recompiling). Effectiveness is observable:
// DB.CacheStats reports hits, misses, evictions, invalidations, plan
// compiles and the hit rate; `go run ./cmd/benchharness -fig A4` prints the
// cached versus re-parse throughput of the agent-suite query mix, and
// `-fig A7` the compiled-versus-interpreted ablation (filtered scan, 3-way
// join, GROUP BY). The relational benchmarks (`make bench`,
// BenchmarkPointQueryUncached/Cached/Prepared and the
// *Interpreted/*Compiled pairs) measure the same effects per query.
//
// # Step-result memoization
//
// Above the data layer, the coordinator memoizes whole plan steps
// (internal/memo): results of agents declared Cacheable in the registry
// are cached by a content hash of (agent, version, inputs) and reused
// across plans and sessions — a warm repeated ask executes nothing, is
// charged nothing, and is admitted by the optimizer at its residual
// projected cost, while single-flight deduplication collapses N concurrent
// identical steps into one execution. Registry updates and data-asset
// version bumps invalidate entries automatically (and poison in-flight
// executions, so stale results are never cached or shared). Tune with
// Config.MemoCapacity / Config.DisableMemo, observe through
// System.MemoStats, blueprintd's GET /memo, `bpctl memo <utterance>`, and
// `go run ./cmd/benchharness -fig A6`.
//
// # Durability and warm restarts
//
// Setting Config.DataDir turns on the durability subsystem
// (internal/durability): one segmented, CRC-framed, group-committed
// write-ahead log plus snapshot files shared by the relational engine
// (logical DML/DDL records, table + schema-version snapshots), the memo
// store (cacheable step results, version-checked at restore against the
// recovered registries), both registries (snapshot-only) and the streams
// store (its stand-alone JSON WAL migrated onto the shared engine). A
// restarted System recovers all of it — snapshot restore plus log replay,
// with a torn final record truncated rather than fatal — so a repeated
// ask after a restart is a memo hit instead of a cold re-execution.
// System.Close flushes a final snapshot; Config.SnapshotEvery adds
// background snapshots that bound recovery time and truncate the log.
// Observe through System.DurabilityStats, blueprintd's /stats and POST
// /snapshot (with -data-dir and graceful SIGINT/SIGTERM shutdown), `bpctl
// -data-dir D snapshot`, and `go run ./cmd/benchharness -fig A8` (crash
// replay vs snapshot restore, warm-memo hit rate across restart).
package blueprint

import (
	"time"

	"blueprint/internal/budget"
	"blueprint/internal/llm"
	"blueprint/internal/obs"
	"blueprint/internal/optimizer"
	"blueprint/internal/resilience"
	"blueprint/internal/workload"
)

// Version is the library version.
const Version = "1.0.0"

// Config configures a System. The zero value is a working development
// configuration: a small deterministic enterprise, the large (most
// accurate) simulated model tier, no persistence, and a $1 per-request
// budget.
type Config struct {
	// Seed drives all synthetic data and the simulated model (default 42).
	Seed int64
	// Scale sizes the generated enterprise (default workload.SmallScale).
	Scale workload.Scale
	// ModelTier selects the simulated LLM tier: "small", "medium", "large"
	// (default "large").
	ModelTier llm.Tier
	// ModelAccuracy overrides the tier's accuracy when in (0, 1].
	ModelAccuracy float64
	// WALPath enables stand-alone stream persistence to the given file
	// (legacy single-file JSON WAL). Ignored when DataDir is set — the
	// shared durability engine then persists streams too.
	WALPath string
	// DataDir enables the durability subsystem: one segmented write-ahead
	// log + snapshot directory shared by the relational engine, the memo
	// store, both registries and the streams store. Opening a System over
	// an existing DataDir recovers all of it — tables, registry versions,
	// warm memo entries, stream history — via snapshot restore plus log
	// replay (a torn final record after a crash is truncated, not fatal).
	DataDir string
	// SnapshotEvery takes background snapshots at this interval when
	// DataDir is set (0 = only on Close and explicit System.Snapshot
	// calls). Snapshots bound recovery time: restore is one sequential
	// read instead of a full log replay, and superseded log segments are
	// deleted.
	SnapshotEvery time.Duration
	// Budget is the per-request QoS limit enforced by the coordinator
	// (default: MaxCost $1).
	Budget budget.Limits
	// Objectives weight the optimizer (default: balanced).
	Objectives optimizer.Objectives
	// MaxParallel bounds how many plan steps the coordinator executes
	// concurrently (default coordinator.DefaultMaxParallel; 1 = sequential).
	// blueprintd exposes it as the -parallel flag.
	MaxParallel int
	// MemoCapacity bounds the coordinator's cross-session step-result
	// memoization cache (entries; default memo.DefaultCapacity).
	MemoCapacity int
	// DisableMemo turns step-result memoization off: every plan step
	// executes fresh even for Cacheable agents.
	DisableMemo bool
	// DisableStandardAgents skips spawning the case-study agents in new
	// sessions (for applications registering only their own agents).
	DisableStandardAgents bool
	// Retry is the coordinator's per-step retry policy: failed executions
	// retry with exponential backoff + jitter, every backoff charged
	// against the plan's latency budget so retries can never blow the
	// deadline (default resilience.DefaultRetryPolicy; MaxAttempts 1
	// disables retrying).
	Retry resilience.RetryPolicy
	// Breaker configures the per-agent circuit breakers the scheduler
	// consults before every dispatch (zero value = resilience defaults).
	Breaker resilience.BreakerConfig
	// DisableBreakers turns per-agent circuit breaking off entirely.
	DisableBreakers bool
	// Governor bounds concurrent governed asks (Session.GovernedAsk, the
	// blueprintd ask endpoint): a global in-flight slot pool with a
	// bounded fair-share wait queue and load shedding. The zero value
	// (MaxConcurrent 0) disables admission control.
	Governor resilience.GovernorConfig
	// Degrade controls graceful degradation: when a breaker is open or
	// the governor sheds, a stale memoized result within StaleFactor x
	// the declared freshness may be served, marked Degraded, instead of
	// failing (zero value = StaleFactor 4; Disabled turns it off).
	Degrade resilience.DegradePolicy
	// AskFreshness is the freshness tolerance attached to memoized
	// ask-level answers, bounding how stale a degraded answer served
	// during overload may be (default 30s; with the default StaleFactor
	// a shed ask may be answered from a result up to 2m old).
	AskFreshness time.Duration
	// SlowAskThreshold sets the flight recorder's capture threshold: asks
	// slower than it (or erroring, degraded, shed) are captured with their
	// span tree, event slice and cost breakdown into obs.SlowAsks, served
	// at GET /slow. Zero leaves the process-global threshold alone
	// (obs.DefaultSlowThreshold on a fresh process); negative disables
	// capture.
	SlowAskThreshold time.Duration
	// SLO configures the per-tenant/per-agent SLO burn-rate accounting
	// (latency target, objective, fast/slow windows); zero-value fields
	// take obs defaults. Served at GET /slo, in /metrics and by bpctl top.
	SLO obs.SLOConfig
	// TraceSessions re-bounds the tracer's per-session span-ring map: past
	// it, least-recently-active sessions' traces are evicted. Zero leaves
	// the process-global bound alone (obs.DefaultMaxSessions).
	TraceSessions int
	// EventLevel sets the event log's minimum recorded level ("debug",
	// "info", "warn", "error", "off"); empty leaves the process-global
	// level alone (info).
	EventLevel string
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Scale == (workload.Scale{}) {
		c.Scale = workload.SmallScale()
	}
	if c.ModelTier == "" {
		c.ModelTier = llm.TierLarge
	}
	if c.Budget == (budget.Limits{}) {
		c.Budget = budget.Limits{MaxCost: 1.0}
	}
	if c.Objectives == (optimizer.Objectives{}) {
		c.Objectives = optimizer.DefaultObjectives()
	}
	if c.Retry == (resilience.RetryPolicy{}) {
		c.Retry = resilience.DefaultRetryPolicy()
	}
	if c.AskFreshness <= 0 {
		c.AskFreshness = 30 * time.Second
	}
	return c
}

// modelConfig resolves the tier preset and accuracy override.
func (c Config) modelConfig() llm.Config {
	presets := llm.Presets(c.Seed)
	var cfg llm.Config
	for _, p := range presets {
		if p.Tier == c.ModelTier {
			cfg = p
		}
	}
	if cfg.Name == "" {
		cfg = presets[len(presets)-1]
	}
	if c.ModelAccuracy > 0 && c.ModelAccuracy <= 1 {
		cfg.Accuracy = c.ModelAccuracy
	}
	cfg.BaseLatency = time.Millisecond // keep in-process sessions snappy
	return cfg
}
