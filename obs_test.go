package blueprint

import (
	"strings"
	"testing"
	"time"

	"blueprint/internal/obs"
)

// TestAskProducesSpanTree is the end-to-end observability acceptance test:
// one Ask through the full stack must yield a span tree with at least four
// distinct components, every child's parent present, and the cross-stream
// token hop (coordinator -> directive -> agent runtime) intact.
func TestAskProducesSpanTree(t *testing.T) {
	sys, err := New(Config{ModelAccuracy: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sess, err := sys.StartSession("")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	// A summarize intent exercises the whole chain: session root, the
	// Agentic Employer's plan, the coordinator service, scheduler, memo
	// and the Summarizer agent's relational statements.
	t0 := time.Now()
	if _, err := sess.Ask("Summarize the applicants for job 3", 10*time.Second); err != nil {
		t.Fatal(err)
	}

	// The tracer is process-global and session IDs restart per System, so
	// the ring may hold spans from other tests' sessions with the same ID;
	// only spans started by this test's ask are in scope.
	ours := func(all []obs.SpanData) []obs.SpanData {
		var out []obs.SpanData
		for _, sp := range all {
			if !sp.Start.Before(t0) {
				out = append(out, sp)
			}
		}
		return out
	}

	// The plan span records just after the display answer is delivered;
	// poll briefly for the full tree.
	want := []string{"session", "coordinator", "scheduler", "memo", "agent", "relational"}
	var spans []obs.SpanData
	deadline := time.Now().Add(2 * time.Second)
	for {
		spans = ours(obs.Spans.Session(sess.ID))
		components := map[string]bool{}
		for _, sp := range spans {
			components[sp.Component] = true
		}
		ok := true
		for _, c := range want {
			ok = ok && components[c]
		}
		if ok || time.Now().After(deadline) {
			for _, c := range want {
				if !components[c] {
					t.Fatalf("span tree missing component %q (got %v)\n%s",
						c, components, obs.RenderTree(spans))
				}
			}
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Structural checks: exactly the asked root, and every parent resolves.
	byID := map[uint64]obs.SpanData{}
	roots := 0
	for _, sp := range spans {
		byID[sp.ID] = sp
	}
	for _, sp := range spans {
		if sp.Parent == 0 {
			roots++
			if sp.Component != "session" || sp.Name != "ask" {
				t.Fatalf("root span = %s/%s, want session/ask", sp.Component, sp.Name)
			}
			continue
		}
		if _, ok := byID[sp.Parent]; !ok {
			t.Fatalf("span %s/%s has dangling parent %d", sp.Component, sp.Name, sp.Parent)
		}
	}
	if roots != 1 {
		t.Fatalf("roots = %d, want 1", roots)
	}

	// The cross-stream hop: the Summarizer's agent span must be parented
	// under the scheduler step that directed it, not floated to the root.
	foundHop := false
	for _, sp := range spans {
		if sp.Component == "agent" && strings.Contains(spanAttr(sp, "invocation"), "summarize") {
			parent := byID[sp.Parent]
			if parent.Component == "scheduler" {
				foundHop = true
			}
		}
	}
	if !foundHop {
		t.Fatalf("no agent span parented under a scheduler step:\n%s", obs.RenderTree(spans))
	}
}

func spanAttr(sp obs.SpanData, key string) string {
	for _, a := range sp.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}
