package cluster

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"blueprint/internal/agent"
	"blueprint/internal/registry"
	"blueprint/internal/streams"
)

const sess = "session:cluster"

func newCluster(t testing.TB) (*Cluster, *streams.Store) {
	t.Helper()
	store := streams.NewStore()
	t.Cleanup(func() { store.Close() })
	reg := registry.NewAgentRegistry()
	for _, spec := range []registry.AgentSpec{
		{
			Name: "CPUAGENT", Description: "cpu-bound worker",
			Inputs:     []registry.ParamSpec{{Name: "X"}},
			Outputs:    []registry.ParamSpec{{Name: "Y"}},
			Deployment: registry.Deployment{Resource: "cpu", Workers: 2},
		},
		{
			Name: "GPUMODEL", Description: "gpu-bound model",
			Inputs:     []registry.ParamSpec{{Name: "X"}},
			Outputs:    []registry.ParamSpec{{Name: "Y"}},
			Deployment: registry.Deployment{Resource: "gpu", Workers: 1},
		},
	} {
		if err := reg.Register(spec); err != nil {
			t.Fatal(err)
		}
	}
	f := agent.NewFactory(reg)
	proc := func(spec registry.AgentSpec) agent.Processor {
		return func(ctx context.Context, inv agent.Invocation) (agent.Outputs, error) {
			return agent.Outputs{Values: map[string]any{"Y": inv.Inputs["X"]}}, nil
		}
	}
	f.RegisterConstructor("CPUAGENT", proc)
	f.RegisterConstructor("GPUMODEL", proc)

	c := New(store, f, sess)
	t.Cleanup(c.Shutdown)
	if err := c.AddNode("cpu-1", "cpu", 4); err != nil {
		t.Fatal(err)
	}
	if err := c.AddNode("cpu-2", "cpu", 4); err != nil {
		t.Fatal(err)
	}
	if err := c.AddNode("gpu-1", "gpu", 2); err != nil {
		t.Fatal(err)
	}
	return c, store
}

func TestPlacementByResource(t *testing.T) {
	c, _ := newCluster(t)
	ctr, err := c.Deploy("GPUMODEL")
	if err != nil {
		t.Fatal(err)
	}
	if ctr.Node != "gpu-1" {
		t.Fatalf("gpu agent on %s", ctr.Node)
	}
	ctr2, err := c.Deploy("CPUAGENT")
	if err != nil {
		t.Fatal(err)
	}
	if ctr2.Node != "cpu-1" && ctr2.Node != "cpu-2" {
		t.Fatalf("cpu agent on %s", ctr2.Node)
	}
}

func TestLeastLoadedSpread(t *testing.T) {
	c, _ := newCluster(t)
	seen := map[string]int{}
	for i := 0; i < 4; i++ {
		ctr, err := c.Deploy("CPUAGENT")
		if err != nil {
			t.Fatal(err)
		}
		seen[ctr.Node]++
	}
	if seen["cpu-1"] != 2 || seen["cpu-2"] != 2 {
		t.Fatalf("spread = %v", seen)
	}
}

func TestCapacityExhaustion(t *testing.T) {
	c, _ := newCluster(t)
	for i := 0; i < 2; i++ {
		if _, err := c.Deploy("GPUMODEL"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Deploy("GPUMODEL"); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("err = %v", err)
	}
}

func TestDuplicateNode(t *testing.T) {
	c, _ := newCluster(t)
	if err := c.AddNode("cpu-1", "cpu", 1); !errors.Is(err, ErrNodeExists) {
		t.Fatalf("err = %v", err)
	}
}

func TestKillAndReconcileRestarts(t *testing.T) {
	c, store := newCluster(t)
	ctr, err := c.Deploy("CPUAGENT")
	if err != nil {
		t.Fatal(err)
	}
	// Verify the agent actually serves before the kill.
	if err := agent.Execute(store, sess, "CPUAGENT", map[string]any{"X": 1}, "", "pre"); err != nil {
		t.Fatal(err)
	}
	if d := agent.AwaitDone(store, sess, "pre"); d == nil || d.Op != agent.OpAgentDone {
		t.Fatalf("pre-kill execution failed: %+v", d)
	}

	if err := c.Kill(ctr.ID); err != nil {
		t.Fatal(err)
	}
	if got := c.Containers("CPUAGENT", Failed); len(got) != 1 {
		t.Fatalf("failed containers = %v", got)
	}
	n, err := c.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || c.TotalRestarts() != 1 {
		t.Fatalf("restarts = %d total=%d", n, c.TotalRestarts())
	}
	got := c.Containers("CPUAGENT", Running)
	if len(got) != 1 || got[0].Restarts != 1 || got[0].Node != ctr.Node {
		t.Fatalf("restarted = %+v", got)
	}
	// Serves again after restart.
	if err := agent.Execute(store, sess, "CPUAGENT", map[string]any{"X": 2}, "", "post"); err != nil {
		t.Fatal(err)
	}
	if d := agent.AwaitDone(store, sess, "post"); d == nil || d.Op != agent.OpAgentDone {
		t.Fatalf("post-restart execution failed: %+v", d)
	}
}

func TestKillUnknown(t *testing.T) {
	c, _ := newCluster(t)
	if err := c.Kill("nope"); !errors.Is(err, ErrContainerNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestScaleUpAndDown(t *testing.T) {
	c, _ := newCluster(t)
	delta, err := c.Scale("CPUAGENT", 3)
	if err != nil {
		t.Fatal(err)
	}
	if delta != 3 || len(c.Containers("CPUAGENT", Running)) != 3 {
		t.Fatalf("scale up delta=%d", delta)
	}
	delta, err = c.Scale("CPUAGENT", 1)
	if err != nil {
		t.Fatal(err)
	}
	if delta != -2 || len(c.Containers("CPUAGENT", Running)) != 1 {
		t.Fatalf("scale down delta=%d running=%d", delta, len(c.Containers("CPUAGENT", Running)))
	}
	// Scale to same count is a no-op.
	delta, err = c.Scale("CPUAGENT", 1)
	if err != nil || delta != 0 {
		t.Fatalf("no-op scale delta=%d err=%v", delta, err)
	}
}

func TestScaleBeyondCapacity(t *testing.T) {
	c, _ := newCluster(t)
	if _, err := c.Scale("CPUAGENT", 20); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("err = %v", err)
	}
	// Partial scale-out still counted.
	if got := len(c.Containers("CPUAGENT", Running)); got != 8 {
		t.Fatalf("running after partial scale = %d", got)
	}
}

func TestScaledOutServiceSharesWork(t *testing.T) {
	c, store := newCluster(t)
	if _, err := c.Scale("CPUAGENT", 3); err != nil {
		t.Fatal(err)
	}
	// All replicas listen for EXECUTE directives; each directive is handled
	// by all (broadcast semantics), so N replicas yield N DONE reports.
	// Verify work completes while replicas run concurrently.
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("w%d", i)
		if err := agent.Execute(store, sess, "CPUAGENT", map[string]any{"X": i}, "", id); err != nil {
			t.Fatal(err)
		}
		if d := agent.AwaitDone(store, sess, id); d == nil || d.Op != agent.OpAgentDone {
			t.Fatalf("execution %s failed", id)
		}
	}
}

func TestPlacementSnapshotAndNodes(t *testing.T) {
	c, _ := newCluster(t)
	if _, err := c.Deploy("CPUAGENT"); err != nil {
		t.Fatal(err)
	}
	p := c.Placement()
	if p["cpu-1"]+p["cpu-2"] != 1 {
		t.Fatalf("placement = %v", p)
	}
	nodes := c.Nodes()
	if len(nodes) != 3 || nodes[0].Name != "cpu-1" {
		t.Fatalf("nodes = %v", nodes)
	}
}

func TestMTTRUnderRepeatedFailures(t *testing.T) {
	c, _ := newCluster(t)
	ctr, err := c.Deploy("CPUAGENT")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := c.Kill(ctr.ID); err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		if _, err := c.Reconcile(); err != nil {
			t.Fatal(err)
		}
		if time.Since(start) > time.Second {
			t.Fatal("reconcile unexpectedly slow")
		}
	}
	if c.TotalRestarts() != 5 {
		t.Fatalf("restarts = %d", c.TotalRestarts())
	}
	got := c.Containers("CPUAGENT", Running)
	if len(got) != 1 || got[0].Restarts != 5 {
		t.Fatalf("container = %+v", got)
	}
}
