// blueprintd serves a blueprint System over HTTP — the "deployed in a
// distributed system" face of the architecture, exposing sessions, the
// conversational surface, both registries and stream observability.
//
// Endpoints:
//
//	POST /sessions                         -> {"id": "session:1"}
//	POST /sessions/{id}/ask    {"text":..} -> {"answer": ...}
//	POST /sessions/{id}/click  {event}     -> {"answer": ...}
//	GET  /sessions/{id}/flow               -> per-message flow trace
//	GET  /agents                           -> agent registry contents
//	GET  /data                             -> data registry contents
//	GET  /stats                            -> stream store + durability counters
//	GET  /memo                             -> step-result memoization stats
//	POST /snapshot                         -> take a durability snapshot now
//
// Deploy-time tuning: -parallel bounds how many plan steps the coordinator
// executes concurrently per plan, -memo bounds the step-result memoization
// cache (entries; -memo 0 uses the default, -no-memo disables reuse), and
// -data-dir points the shared durability engine at its WAL + snapshot
// directory — a restarted daemon then recovers tables, registries, warm
// memo entries and stream history instead of coming back cold. SIGINT and
// SIGTERM shut down gracefully: in-flight requests drain, a final snapshot
// is flushed and the log closes cleanly.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"blueprint"
)

type server struct {
	sys *blueprint.System
	mu  sessionMap
}

// sessionMap guards the live session handles against concurrent HTTP
// clients (POST /sessions racing asks and /stats reads).
type sessionMap struct {
	sync.RWMutex
	sessions map[string]*blueprint.Session
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Int64("seed", 42, "deterministic seed")
	walPath := flag.String("wal", "", "optional stand-alone stream WAL path (superseded by -data-dir)")
	dataDir := flag.String("data-dir", "", "durability directory: shared WAL + snapshots for warm restarts")
	snapEvery := flag.Duration("snapshot-every", time.Minute, "background snapshot interval when -data-dir is set (0 = only on shutdown)")
	parallel := flag.Int("parallel", 0, "max concurrently executing steps per plan (0 = default)")
	memoCap := flag.Int("memo", 0, "step-result memoization cache capacity in entries (0 = default)")
	noMemo := flag.Bool("no-memo", false, "disable step-result memoization")
	flag.Parse()

	sys, err := blueprint.New(blueprint.Config{
		Seed: *seed, ModelAccuracy: 1.0, WALPath: *walPath,
		DataDir: *dataDir, SnapshotEvery: *snapEvery,
		MaxParallel: *parallel, MemoCapacity: *memoCap, DisableMemo: *noMemo,
	})
	if err != nil {
		log.Fatal(err)
	}

	s := &server{sys: sys, mu: sessionMap{sessions: map[string]*blueprint.Session{}}}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sessions", s.createSession)
	mux.HandleFunc("POST /sessions/{id}/ask", s.ask)
	mux.HandleFunc("POST /sessions/{id}/click", s.click)
	mux.HandleFunc("GET /sessions/{id}/flow", s.flow)
	mux.HandleFunc("GET /agents", s.agents)
	mux.HandleFunc("GET /data", s.data)
	mux.HandleFunc("GET /stats", s.stats)
	mux.HandleFunc("GET /memo", s.memo)
	mux.HandleFunc("POST /snapshot", s.snapshot)

	if *dataDir != "" {
		rec := sys.DurabilityStats().Recovery
		log.Printf("durability on at %s: snapshot_restored=%v replayed_records=%d torn_tail=%v recovery=%s",
			*dataDir, rec.SnapshotRestored, rec.ReplayedRecords, rec.TornTailTruncated, rec.Duration)
	}
	log.Printf("blueprintd %s listening on %s (agents=%d, data assets=%d)",
		blueprint.Version, *addr, sys.AgentRegistry.Len(), sys.DataRegistry.Len())

	srv := &http.Server{Addr: *addr, Handler: mux}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		sys.Close()
		log.Fatal(err)
	case <-ctx.Done():
	}
	// Graceful shutdown: drain in-flight requests, then flush a final
	// snapshot and close the log cleanly (System.Close).
	log.Printf("shutting down: draining requests, flushing final snapshot")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	sys.Close()
	if *dataDir != "" {
		st := sys.DurabilityStats()
		log.Printf("durability closed: snapshots=%d appends=%d log_bytes=%d", st.Snapshots, st.Appends, st.LogBytes)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *server) createSession(w http.ResponseWriter, r *http.Request) {
	sess, err := s.sys.StartSession("")
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	s.mu.Lock()
	s.mu.sessions[sess.ID] = sess
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, map[string]string{"id": sess.ID})
}

func (s *server) session(w http.ResponseWriter, r *http.Request) *blueprint.Session {
	id := r.PathValue("id")
	if !strings.HasPrefix(id, "session:") {
		id = "session:" + id
	}
	s.mu.RLock()
	sess, ok := s.mu.sessions[id]
	s.mu.RUnlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown session " + id})
		return nil
	}
	return sess
}

func (s *server) ask(w http.ResponseWriter, r *http.Request) {
	sess := s.session(w, r)
	if sess == nil {
		return
	}
	var body struct {
		Text    string `json:"text"`
		Timeout int    `json:"timeout_ms"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil || body.Text == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "body must be {\"text\": ...}"})
		return
	}
	timeout := 15 * time.Second
	if body.Timeout > 0 {
		timeout = time.Duration(body.Timeout) * time.Millisecond
	}
	answer, err := sess.Ask(body.Text, timeout)
	if err != nil {
		writeJSON(w, http.StatusGatewayTimeout, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"answer": answer})
}

func (s *server) click(w http.ResponseWriter, r *http.Request) {
	sess := s.session(w, r)
	if sess == nil {
		return
	}
	var event map[string]any
	if err := json.NewDecoder(r.Body).Decode(&event); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "body must be a UI event object"})
		return
	}
	answer, err := sess.Click(event, 15*time.Second)
	if err != nil {
		writeJSON(w, http.StatusGatewayTimeout, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"answer": answer})
}

func (s *server) flow(w http.ResponseWriter, r *http.Request) {
	sess := s.session(w, r)
	if sess == nil {
		return
	}
	steps := sess.Flow()
	out := make([]map[string]any, len(steps))
	for i, st := range steps {
		out[i] = map[string]any{
			"ts": st.TS, "sender": st.Sender, "stream": st.Stream,
			"kind": st.Kind.String(), "op": st.Op, "tags": st.Tags, "payload": st.Payload,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) agents(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sys.AgentRegistry.List())
}

func (s *server) data(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sys.DataRegistry.List("", ""))
}

func (s *server) stats(w http.ResponseWriter, r *http.Request) {
	st := s.sys.Store.StatsSnapshot()
	ms := s.sys.MemoStats()
	cs := s.sys.Enterprise.DB.CacheStats()
	s.mu.RLock()
	sessions := len(s.mu.sessions)
	s.mu.RUnlock()
	ds := s.sys.DurabilityStats()
	writeJSON(w, http.StatusOK, map[string]any{
		"streams": st.StreamsCreated, "messages": st.MessagesAppended,
		"data": st.DataMessages, "control": st.ControlMessages, "events": st.EventMessages,
		"subscriptions": st.Subscriptions, "deliveries": st.Deliveries,
		"version": blueprint.Version, "sessions": sessions,
		"memo_hits": ms.Hits, "memo_hit_rate": ms.HitRate(),
		"memo_restored":   ms.Restored,
		"stmt_cache_hits": cs.Hits, "stmt_cache_hit_rate": cs.HitRate(),
		"stmt_cache_shape_hits":      cs.ShapeHits,
		"stmt_cache_exact_fallbacks": cs.ExactFallbacks,
		"stmt_cache_uncacheable":     cs.Uncacheable,
		"plan_compiles":              cs.Compiles,
		"durability_enabled":         s.sys.Durability != nil,
		"durability_snapshots":       ds.Snapshots, "durability_log_bytes": ds.LogBytes,
		"durability_segments": ds.Segments, "durability_appends": ds.Appends,
		"durability_fsyncs":             ds.Fsyncs,
		"durability_last_recovery":      ds.Recovery.Duration.String(),
		"durability_snapshot_restored":  ds.Recovery.SnapshotRestored,
		"durability_replayed_records":   ds.Recovery.ReplayedRecords,
		"durability_torn_tail_repaired": ds.Recovery.TornTailTruncated,
	})
}

// snapshot triggers a durability snapshot on demand (POST /snapshot).
func (s *server) snapshot(w http.ResponseWriter, r *http.Request) {
	if err := s.sys.Snapshot(); err != nil {
		writeJSON(w, http.StatusConflict, map[string]string{"error": err.Error()})
		return
	}
	st := s.sys.DurabilityStats()
	writeJSON(w, http.StatusOK, map[string]any{
		"snapshots":      st.Snapshots,
		"snapshot_bytes": st.SnapshotBytes,
		"log_bytes":      st.LogBytes,
		"segments":       st.Segments,
	})
}

func (s *server) memo(w http.ResponseWriter, r *http.Request) {
	ms := s.sys.MemoStats()
	writeJSON(w, http.StatusOK, map[string]any{
		"enabled":       s.sys.Memo != nil,
		"hits":          ms.Hits,
		"misses":        ms.Misses,
		"hit_rate":      ms.HitRate(),
		"coalesced":     ms.Coalesced,
		"evictions":     ms.Evictions,
		"invalidations": ms.Invalidations,
		"entries":       ms.Entries,
		"saved_cost":    ms.SavedCost,
		"saved_latency": ms.SavedLatency.String(),
	})
}
