package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"blueprint"
	"blueprint/internal/httpapi"
	"blueprint/internal/obs"
	"blueprint/internal/resilience"
)

// startDaemon boots a governed System behind a real HTTP listener — the
// remote commands exercise the same wire path they use against a live
// blueprintd.
func startDaemon(t *testing.T) string {
	t.Helper()
	sys, err := blueprint.New(blueprint.Config{
		ModelAccuracy:    1.0,
		Governor:         resilience.GovernorConfig{MaxConcurrent: 4},
		SlowAskThreshold: time.Nanosecond, // capture every ask
		EventLevel:       "debug",
		SLO:              obs.SLOConfig{LatencyTarget: time.Nanosecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	t.Cleanup(func() {
		obs.SlowAsks.SetThreshold(obs.DefaultSlowThreshold)
		obs.Events.SetLevel(obs.LevelInfo)
	})
	srv := httptest.NewServer(httpapi.New(sys, httpapi.Options{}))
	t.Cleanup(srv.Close)
	return srv.URL
}

// askOverHTTP creates a session and drives one ask, returning the session id.
func askOverHTTP(t *testing.T, base, text string) string {
	t.Helper()
	resp, err := http.Post(base+"/sessions", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := strings.TrimPrefix(created.ID, "session:")
	body, _ := json.Marshal(map[string]string{"text": text})
	resp, err = http.Post(base+"/sessions/"+id+"/ask", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ask = %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Trace-Id") == "" {
		t.Fatal("ask response missing X-Trace-Id")
	}
	return id
}

func TestRemoteCommandsAgainstLiveDaemon(t *testing.T) {
	base := startDaemon(t)
	id := askOverHTTP(t, base, "Summarize the applicants for job 3")

	// trace: the session's span tree.
	var out bytes.Buffer
	deadline := time.Now().Add(5 * time.Second)
	for {
		out.Reset()
		if err := remoteTrace(&out, base, id); err == nil && strings.Contains(out.String(), "session/ask") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace never showed the ask root:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !strings.Contains(out.String(), "session:"+id) {
		t.Fatalf("trace output missing session id:\n%s", out.String())
	}

	// events: the governed ask's admit decision at debug level.
	out.Reset()
	if err := remoteEvents(&out, base, ""); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "event log: head=") {
		t.Fatalf("events header missing:\n%s", text)
	}
	if !strings.Contains(text, "governor") || !strings.Contains(text, "admit") {
		t.Fatalf("events output missing governor admit:\n%s", text)
	}
	// Level filter drops the debug admits.
	out.Reset()
	if err := remoteEvents(&out, base, "error"); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "admit") {
		t.Fatalf("error-level filter kept debug events:\n%s", out.String())
	}

	// slow: list plus one full recording with span tree and breakdown.
	out.Reset()
	if err := remoteSlow(&out, base, ""); err != nil {
		t.Fatal(err)
	}
	text = out.String()
	if !strings.Contains(text, "slow asks: threshold=") || !strings.Contains(text, "slow") {
		t.Fatalf("slow list output:\n%s", text)
	}
	out.Reset()
	if err := remoteSlow(&out, base, "latest"); err != nil {
		t.Fatal(err)
	}
	text = out.String()
	for _, want := range []string{"exemplar", "trace=", "spans (", "session/ask", "cost: $"} {
		if !strings.Contains(text, want) {
			t.Fatalf("slow latest output missing %q:\n%s", want, text)
		}
	}

	// top: the one-shot summary including the SLO burn line for the tenant
	// (1ns latency target makes every ask slow, so the burn is nonzero).
	out.Reset()
	if err := remoteTop(&out, base); err != nil {
		t.Fatal(err)
	}
	text = out.String()
	for _, want := range []string{"asks      total=", "resil     admitted=", "slo       tenant default"} {
		if !strings.Contains(text, want) {
			t.Fatalf("top output missing %q:\n%s", want, text)
		}
	}
	if !strings.Contains(text, "burn fast=") {
		t.Fatalf("top output missing burn rates:\n%s", text)
	}
}

func TestRemoteCommandsConnectionRefused(t *testing.T) {
	var out bytes.Buffer
	if err := remoteTop(&out, "http://127.0.0.1:1"); err == nil {
		t.Fatal("top against a dead daemon must error")
	}
	if err := remoteEvents(&out, "http://127.0.0.1:1", ""); err == nil {
		t.Fatal("events against a dead daemon must error")
	}
	if err := remoteSlow(&out, "http://127.0.0.1:1", ""); err == nil {
		t.Fatal("slow against a dead daemon must error")
	}
	if err := remoteTrace(&out, "http://127.0.0.1:1", "x"); err == nil {
		t.Fatal("trace against a dead daemon must error")
	}
}
