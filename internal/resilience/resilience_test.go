package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// ---- injector ----

func TestInjectorDeterministic(t *testing.T) {
	run := func() (InjectStats, []bool) {
		in := NewInjector(7, Rule{Site: SiteAgent, Kind: KindError, Probability: 0.3})
		outcomes := make([]bool, 0, 200)
		for i := 0; i < 200; i++ {
			outcomes = append(outcomes, in.eval(SiteAgent).fire)
		}
		return in.Stats(), outcomes
	}
	s1, o1 := run()
	s2, o2 := run()
	if s1 != s2 {
		t.Fatalf("same seed, different stats: %+v vs %+v", s1, s2)
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("same seed, different decision at consultation %d", i)
		}
	}
	if s1.Errors == 0 || s1.Errors == 200 {
		t.Fatalf("p=0.3 over 200 consultations fired %d times", s1.Errors)
	}
}

func TestInjectorAfterAndLimit(t *testing.T) {
	in := NewInjector(1, Rule{Site: SiteAgent, Kind: KindError, Probability: 1, After: 3, Limit: 2})
	fired := 0
	for i := 0; i < 10; i++ {
		if in.eval(SiteAgent).fire {
			if i < 3 {
				t.Fatalf("rule fired at consultation %d despite After=3", i)
			}
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("Limit=2 but fired %d times", fired)
	}
}

func TestInjectorSiteSelectivity(t *testing.T) {
	in := NewInjector(1, Rule{Site: SiteRelational, Kind: KindError, Probability: 1})
	if in.eval(SiteAgent).fire {
		t.Fatal("agent-site consultation fired a relational-only rule")
	}
	if !in.eval(SiteRelational).fire {
		t.Fatal("relational-site consultation did not fire its rule")
	}
}

func TestCheckInactiveIsNil(t *testing.T) {
	Deactivate()
	if err := Check(context.Background(), SiteAgent); err != nil {
		t.Fatalf("inactive Check returned %v", err)
	}
}

func TestCheckKinds(t *testing.T) {
	defer Deactivate()

	// Error.
	Activate(NewInjector(1, Rule{Kind: KindError, Probability: 1}))
	if err := Check(context.Background(), SiteAgent); !errors.Is(err, ErrInjected) {
		t.Fatalf("KindError: got %v", err)
	}

	// Latency: healthy but delayed.
	Activate(NewInjector(1, Rule{Kind: KindLatency, Probability: 1, Latency: 20 * time.Millisecond}))
	start := time.Now()
	if err := Check(context.Background(), SiteAgent); err != nil {
		t.Fatalf("KindLatency: got %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("KindLatency slept only %s", d)
	}

	// Hang: blocks until ctx cancel, then errors.
	Activate(NewInjector(1, Rule{Kind: KindHang, Probability: 1, Latency: time.Minute}))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start = time.Now()
	err := Check(ctx, SiteAgent)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("KindHang: got %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("KindHang ignored cancellation, blocked %s", d)
	}

	// Crash: invokes the hook.
	crashed := false
	in := NewInjector(1, Rule{Kind: KindCrash, Probability: 1})
	in.OnCrash(func() { crashed = true })
	Activate(in)
	if err := Check(context.Background(), SiteAgent); !errors.Is(err, ErrInjected) {
		t.Fatalf("KindCrash: got %v", err)
	}
	if !crashed {
		t.Fatal("KindCrash did not invoke the crash hook")
	}
}

// ---- retry ----

func TestBackoffGrowthAndCap(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 40 * time.Millisecond, Multiplier: 2}
	want := []time.Duration{10, 20, 40, 40}
	for i, w := range want {
		if got := p.Backoff(i + 1); got != w*time.Millisecond {
			t.Fatalf("Backoff(%d) = %s, want %s", i+1, got, w*time.Millisecond)
		}
	}
}

func TestBackoffJitterBounded(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 2, BaseBackoff: 100 * time.Millisecond, Multiplier: 2, JitterFrac: 0.2}
	for i := 0; i < 100; i++ {
		d := p.Backoff(1)
		if d < 80*time.Millisecond || d > 120*time.Millisecond {
			t.Fatalf("jittered backoff %s outside ±20%% of 100ms", d)
		}
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{errors.New("agent flaked"), true},
		{fmt.Errorf("wrap: %w", ErrInjected), true},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		{fmt.Errorf("wrap: %w", ErrBreakerOpen), false},
		{&OverloadError{RetryAfter: time.Second, Reason: "queue full"}, false},
	}
	for _, c := range cases {
		if got := Retryable(c.err); got != c.want {
			t.Fatalf("Retryable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

// ---- breaker ----

func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(BreakerConfig{Window: 10, MinSamples: 4, FailureThreshold: 0.5, OpenFor: time.Second, HalfOpenProbes: 1})
	b.now = func() time.Time { return now }

	// Below MinSamples nothing trips, even at 100% failure.
	for i := 0; i < 3; i++ {
		b.Record(false)
	}
	if st := b.State(); st != Closed {
		t.Fatalf("tripped below MinSamples: %s", st)
	}
	b.Record(false) // 4 samples, 100% failure -> trip
	if st := b.State(); st != Open {
		t.Fatalf("state after threshold = %s, want open", st)
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a dispatch")
	}

	// OpenFor elapses -> half-open admits exactly HalfOpenProbes.
	now = now.Add(2 * time.Second)
	if !b.Allow() {
		t.Fatal("half-open probe rejected")
	}
	if b.Allow() {
		t.Fatal("second probe admitted with HalfOpenProbes=1")
	}

	// Probe failure re-opens.
	b.Record(false)
	if st := b.State(); st != Open {
		t.Fatalf("state after probe failure = %s, want open", st)
	}

	// Next probe succeeds -> closed, window reset.
	now = now.Add(2 * time.Second)
	if !b.Allow() {
		t.Fatal("second half-open probe rejected")
	}
	b.Record(true)
	if st := b.State(); st != Closed {
		t.Fatalf("state after probe success = %s, want closed", st)
	}
	if !b.Allow() {
		t.Fatal("closed breaker rejected")
	}
	// The reset window must not re-trip from pre-open history.
	b.Record(true)
	b.Record(true)
	if st := b.State(); st != Closed {
		t.Fatalf("re-tripped from stale window: %s", st)
	}
}

func TestBreakerSetPartitionsByAgent(t *testing.T) {
	s := NewSet(BreakerConfig{Window: 4, MinSamples: 2, FailureThreshold: 0.5, OpenFor: time.Hour})
	for i := 0; i < 4; i++ {
		s.Record("flaky", false)
		s.Record("healthy", true)
	}
	if s.Allow("flaky") {
		t.Fatal("flaky agent's breaker should be open")
	}
	if !s.Allow("healthy") {
		t.Fatal("healthy agent's breaker tripped")
	}
	if got := s.OpenCount(); got != 1 {
		t.Fatalf("OpenCount = %d, want 1", got)
	}
	states := s.States()
	if states["flaky"] != Open || states["healthy"] != Closed {
		t.Fatalf("States() = %v", states)
	}
}

func TestNilBreakerSet(t *testing.T) {
	var s *Set
	if !s.Allow("x") {
		t.Fatal("nil set must allow")
	}
	s.Record("x", false)
	if s.OpenCount() != 0 {
		t.Fatal("nil set OpenCount != 0")
	}
}

// ---- governor ----

func TestGovernorAdmitRelease(t *testing.T) {
	g := NewGovernor(GovernorConfig{MaxConcurrent: 2, MaxQueue: 2, QueueTimeout: 50 * time.Millisecond})
	ctx := context.Background()
	r1, err := g.Admit(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := g.Admit(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	// Pool full; a third ask queues and times out.
	start := time.Now()
	_, err = g.Admit(ctx, "b")
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("expected shed, got %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("shed decision took %s (must be bounded by QueueTimeout)", d)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.RetryAfter <= 0 {
		t.Fatalf("shed error carries no RetryAfter: %v", err)
	}
	r1()
	r2()
	if st := g.Stats(); st.InFlight != 0 || st.Admitted != 2 || st.Shed != 1 {
		t.Fatalf("stats after release: %+v", st)
	}
}

func TestGovernorQueueHandoff(t *testing.T) {
	g := NewGovernor(GovernorConfig{MaxConcurrent: 1, MaxQueue: 4, QueueTimeout: 5 * time.Second})
	r1, err := g.Admit(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		r, err := g.Admit(context.Background(), "b")
		if err == nil {
			r()
		}
		got <- err
	}()
	time.Sleep(20 * time.Millisecond) // let b queue
	r1()
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("queued ask not handed the released slot: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued ask never granted")
	}
}

func TestGovernorQueueFullShedsImmediately(t *testing.T) {
	g := NewGovernor(GovernorConfig{MaxConcurrent: 1, MaxQueue: 1, QueueTimeout: 10 * time.Second})
	ctx := context.Background()
	r, _ := g.Admit(ctx, "a")
	defer r()
	go func() { _, _ = g.Admit(ctx, "b") }() // fills the queue
	time.Sleep(20 * time.Millisecond)
	start := time.Now()
	_, err := g.Admit(ctx, "c")
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queue-full arrival not shed: %v", err)
	}
	if d := time.Since(start); d > 200*time.Millisecond {
		t.Fatalf("queue-full shed waited %s; must be immediate", d)
	}
	r()
}

func TestGovernorTenantFairness(t *testing.T) {
	// Capacity 4, share 0.5 -> one tenant may hold at most 2 slots under
	// contention.
	g := NewGovernor(GovernorConfig{MaxConcurrent: 4, MaxQueue: 8, QueueTimeout: time.Second, TenantShare: 0.5})
	ctx := context.Background()

	// The hog fills the whole pool while alone (work-conserving).
	var releases []func()
	for i := 0; i < 4; i++ {
		r, err := g.Admit(ctx, "hog")
		if err != nil {
			t.Fatalf("lone tenant blocked from free capacity: %v", err)
		}
		releases = append(releases, r)
	}
	// Under contention further hog asks shed immediately (over fair share)...
	if _, err := g.Admit(ctx, "hog"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("hog over share not shed: %v", err)
	}
	// ...while another tenant's asks queue and get slots as the hog drains.
	admitted := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		go func() {
			if r, err := g.Admit(ctx, "small"); err == nil {
				admitted <- struct{}{}
				_ = r
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	releases[0]()
	releases[1]()
	for i := 0; i < 2; i++ {
		select {
		case <-admitted:
		case <-time.After(2 * time.Second):
			t.Fatal("small tenant starved despite fair-share policy")
		}
	}
	st := g.Stats()
	if st.TenantShed == 0 {
		t.Fatalf("expected tenant-share sheds, stats %+v", st)
	}
}

func TestGovernorConcurrentStress(t *testing.T) {
	g := NewGovernor(GovernorConfig{MaxConcurrent: 4, MaxQueue: 16, QueueTimeout: 100 * time.Millisecond})
	var wg sync.WaitGroup
	var peak atomic.Int64
	var cur atomic.Int64
	for i := 0; i < 200; i++ {
		wg.Add(1)
		tenant := fmt.Sprintf("t%d", i%8)
		go func() {
			defer wg.Done()
			release, err := g.Admit(context.Background(), tenant)
			if err != nil {
				return
			}
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			release()
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > 4 {
		t.Fatalf("concurrency exceeded MaxConcurrent: peak %d", p)
	}
	st := g.Stats()
	if st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("leaked slots: %+v", st)
	}
	if st.Admitted == 0 {
		t.Fatal("nothing admitted")
	}
}

func TestNilGovernor(t *testing.T) {
	var g *Governor
	release, err := g.Admit(context.Background(), "x")
	if err != nil {
		t.Fatal(err)
	}
	release()
	if g.Saturated() {
		t.Fatal("nil governor saturated")
	}
	if NewGovernor(GovernorConfig{}) != nil {
		t.Fatal("zero config must produce a nil (ungoverned) governor")
	}
}

// ---- degrade ----

func TestDegradePolicy(t *testing.T) {
	p := DegradePolicy{StaleFactor: 4}
	if !p.Allows(time.Second, 3*time.Second) {
		t.Fatal("age 3s within 4x1s bound rejected")
	}
	if p.Allows(time.Second, 5*time.Second) {
		t.Fatal("age 5s beyond 4x1s bound allowed")
	}
	if !p.Allows(0, 24*time.Hour) {
		t.Fatal("freshness 0 (valid until invalidated) must always allow")
	}
	if (DegradePolicy{Disabled: true}).Allows(time.Second, 0) {
		t.Fatal("disabled policy allowed a serve")
	}
}
