package budget

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestChargeWithinLimits(t *testing.T) {
	b := New(Limits{MaxCost: 1.0, MaxLatency: time.Second, MinAccuracy: 0.8})
	if v := b.Charge("step1", 0.2, 100*time.Millisecond, 0.95); v != nil {
		t.Fatalf("violations = %v", v)
	}
	r := b.Snapshot()
	if r.CostSpent != 0.2 || r.Latency != 100*time.Millisecond || r.Charges != 1 {
		t.Fatalf("report = %+v", r)
	}
	if r.Accuracy != 0.95 {
		t.Fatalf("accuracy = %v", r.Accuracy)
	}
	if b.Violated() {
		t.Fatal("violated within limits")
	}
}

func TestCostViolation(t *testing.T) {
	b := New(Limits{MaxCost: 0.5})
	if v := b.Charge("a", 0.3, 0, 0); v != nil {
		t.Fatalf("early violation: %v", v)
	}
	v := b.Charge("b", 0.3, 0, 0)
	if len(v) != 1 || v[0].Dimension != DimCost || v[0].Step != "b" {
		t.Fatalf("violations = %v", v)
	}
	if !strings.Contains(v[0].String(), "cost") {
		t.Fatalf("render = %s", v[0])
	}
	if !b.Violated() {
		t.Fatal("not marked violated")
	}
}

func TestLatencyViolation(t *testing.T) {
	b := New(Limits{MaxLatency: 100 * time.Millisecond})
	v := b.Charge("slow", 0, 150*time.Millisecond, 0)
	if len(v) != 1 || v[0].Dimension != DimLatency {
		t.Fatalf("violations = %v", v)
	}
}

func TestAccuracyViolationCostWeighted(t *testing.T) {
	b := New(Limits{MinAccuracy: 0.9})
	// Cheap accurate step, expensive inaccurate step: weighted estimate
	// sinks below 0.9.
	if v := b.Charge("good", 0.001, 0, 0.99); v != nil {
		t.Fatalf("early violation: %v", v)
	}
	v := b.Charge("bad", 0.1, 0, 0.5)
	if len(v) != 1 || v[0].Dimension != DimAccuracy {
		t.Fatalf("violations = %v", v)
	}
	r := b.Snapshot()
	if r.Accuracy >= 0.9 || r.Accuracy <= 0.5 {
		t.Fatalf("weighted accuracy = %v", r.Accuracy)
	}
}

func TestZeroLimitsNeverViolate(t *testing.T) {
	b := New(Limits{})
	for i := 0; i < 100; i++ {
		if v := b.Charge("s", 10, time.Hour, 0.01); v != nil {
			t.Fatalf("violation with no limits: %v", v)
		}
	}
}

func TestWouldExceed(t *testing.T) {
	b := New(Limits{MaxCost: 1.0, MaxLatency: time.Second})
	b.Charge("s", 0.8, 800*time.Millisecond, 0)
	if b.WouldExceed(0.1, 100*time.Millisecond) {
		t.Fatal("within-projection flagged")
	}
	if !b.WouldExceed(0.3, 0) {
		t.Fatal("cost projection not flagged")
	}
	if !b.WouldExceed(0, 300*time.Millisecond) {
		t.Fatal("latency projection not flagged")
	}
	// Unlimited budget never exceeds.
	if New(Limits{}).WouldExceed(1e9, time.Hour) {
		t.Fatal("unlimited exceeded")
	}
}

func TestRemaining(t *testing.T) {
	b := New(Limits{MaxCost: 1.0, MaxLatency: time.Second})
	b.Charge("s", 0.25, 400*time.Millisecond, 0)
	cost, lat := b.Remaining()
	if cost != 0.75 || lat != 600*time.Millisecond {
		t.Fatalf("remaining = %v %v", cost, lat)
	}
	b.Charge("s2", 10, 10*time.Second, 0)
	cost, lat = b.Remaining()
	if cost != 0 || lat != 0 {
		t.Fatalf("overdrawn remaining = %v %v", cost, lat)
	}
}

func TestAccuracyUnknownWhenNoSignal(t *testing.T) {
	b := New(Limits{MinAccuracy: 0.99})
	if v := b.Charge("s", 0.1, 0, 0); v != nil {
		t.Fatalf("accuracy violation without signal: %v", v)
	}
	if r := b.Snapshot(); r.Accuracy != 0 {
		t.Fatalf("accuracy = %v", r.Accuracy)
	}
}

func TestConcurrentCharges(t *testing.T) {
	b := New(Limits{MaxCost: 1000})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				b.Charge("s", 0.01, time.Millisecond, 0.9)
			}
		}()
	}
	wg.Wait()
	r := b.Snapshot()
	if r.Charges != 1600 {
		t.Fatalf("charges = %d", r.Charges)
	}
	want := 16.0
	if r.CostSpent < want-0.0001 || r.CostSpent > want+0.0001 {
		t.Fatalf("cost = %v", r.CostSpent)
	}
}

func TestReserveCommitLifecycle(t *testing.T) {
	b := New(Limits{MaxCost: 1.0, MaxLatency: time.Second})
	rsv, v := b.Reserve("s1", 0.4, 200*time.Millisecond)
	if rsv == nil || v != nil {
		t.Fatalf("reserve failed: %v", v)
	}
	r := b.Snapshot()
	if r.CostReserved != 0.4 || r.LatencyReserved != 200*time.Millisecond {
		t.Fatalf("reserved = %+v", r)
	}
	if r.Charges != 0 || r.CostSpent != 0 {
		t.Fatalf("reservation charged: %+v", r)
	}
	// Reservation headroom counts against further admission.
	if cost, _ := b.Remaining(); cost != 0.6 {
		t.Fatalf("remaining = %v", cost)
	}
	if !b.WouldExceed(0.7, 0) {
		t.Fatal("reserved headroom not counted by WouldExceed")
	}
	// Commit actuals (cheaper than projected).
	if v := rsv.Commit(0.3, 150*time.Millisecond, 0.9); v != nil {
		t.Fatalf("commit violations: %v", v)
	}
	r = b.Snapshot()
	if r.CostReserved != 0 || r.CostSpent != 0.3 || r.Charges != 1 {
		t.Fatalf("post-commit = %+v", r)
	}
	// Double-commit is a no-op.
	if v := rsv.Commit(0.3, 0, 0); v != nil || b.Snapshot().Charges != 1 {
		t.Fatal("double commit charged again")
	}
}

func TestReserveRejectsOverLimit(t *testing.T) {
	b := New(Limits{MaxCost: 0.5})
	if rsv, v := b.Reserve("big", 0.6, 0); rsv != nil || len(v) != 1 || v[0].Dimension != DimCost {
		t.Fatalf("over-limit reserve admitted: rsv=%v v=%v", rsv, v)
	}
	// A failed Reserve claims nothing and records no violation.
	if b.Violated() {
		t.Fatal("failed reserve recorded a violation")
	}
	if r := b.Snapshot(); r.CostReserved != 0 {
		t.Fatalf("failed reserve leaked headroom: %+v", r)
	}
}

func TestReleaseReturnsHeadroom(t *testing.T) {
	b := New(Limits{MaxCost: 0.5})
	rsv, _ := b.Reserve("s", 0.5, 0)
	if rsv == nil {
		t.Fatal("reserve failed")
	}
	if r2, v := b.Reserve("s2", 0.1, 0); r2 != nil || v == nil {
		t.Fatal("exhausted budget admitted a second reservation")
	}
	rsv.Release()
	if r2, v := b.Reserve("s2", 0.1, 0); r2 == nil || v != nil {
		t.Fatalf("released headroom not reusable: %v", v)
	}
}

// Two (or more) concurrent Reserve calls must never jointly exceed the cost
// limit: with MaxCost 1.0 and per-step cost 0.3, at most 3 of the racing
// steps may be admitted no matter the interleaving. Run under -race.
func TestConcurrentReserveCannotOvershoot(t *testing.T) {
	const (
		limit    = 1.0
		stepCost = 0.3
		workers  = 10
	)
	b := New(Limits{MaxCost: limit})
	var wg sync.WaitGroup
	admitted := make(chan *Reservation, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if rsv, _ := b.Reserve("s", stepCost, 0); rsv != nil {
				admitted <- rsv
			}
		}()
	}
	wg.Wait()
	close(admitted)
	var rsvs []*Reservation
	for rsv := range admitted {
		rsvs = append(rsvs, rsv)
	}
	if len(rsvs) != 3 {
		t.Fatalf("admitted %d reservations of $%.1f under a $%.1f limit", len(rsvs), stepCost, limit)
	}
	// Committing every admitted step at its projected cost stays within the
	// limit: no violations possible through the Reserve/Commit path.
	for _, rsv := range rsvs {
		if v := rsv.Commit(stepCost, 0, 0); v != nil {
			t.Fatalf("commit violated after admission: %v", v)
		}
	}
	if b.Violated() {
		t.Fatal("reserve/commit path overshot the limit")
	}
	if cost := b.Snapshot().CostSpent; cost > limit {
		t.Fatalf("spent %v > limit %v", cost, limit)
	}
}

func TestSnapshotViolationsCopied(t *testing.T) {
	b := New(Limits{MaxCost: 0.01})
	b.Charge("s", 1, 0, 0)
	r := b.Snapshot()
	if len(r.Violations) != 1 {
		t.Fatalf("violations = %v", r.Violations)
	}
	r.Violations[0].Step = "mutated"
	r2 := b.Snapshot()
	if r2.Violations[0].Step != "s" {
		t.Fatal("snapshot leaked internal state")
	}
}

func TestChargeMemoHitIsFree(t *testing.T) {
	b := New(Limits{MaxCost: 0.01, MaxLatency: 10 * time.Millisecond})
	if vs := b.Charge("s1:AGENT", 0.01, 10*time.Millisecond, 0.9); len(vs) != 0 {
		t.Fatalf("violations = %v", vs)
	}
	// The budget is now exactly at both limits; a memo hit must still be
	// admissible because it consumes nothing.
	if vs := b.ChargeMemoHit("s2:AGENT:memo", 0.9); len(vs) != 0 {
		t.Fatalf("memo hit tripped limits: %v", vs)
	}
	rep := b.Snapshot()
	if rep.CostSpent != 0.01 || rep.Latency != 10*time.Millisecond {
		t.Fatalf("hit charged actuals: %+v", rep)
	}
	if rep.Charges != 2 || rep.MemoHits != 1 {
		t.Fatalf("charges=%d memoHits=%d", rep.Charges, rep.MemoHits)
	}
}

func TestChargeMemoHitAccuracyStillCounts(t *testing.T) {
	b := New(Limits{MinAccuracy: 0.8})
	// Zero-cost charges weigh accuracy at the epsilon weight, so a cached
	// low-accuracy result still drags the running estimate down.
	if vs := b.ChargeMemoHit("s1:BAD:memo", 0.1); len(vs) == 0 {
		t.Fatal("low-accuracy memo hit did not trip MinAccuracy")
	}
	if !b.Violated() {
		t.Fatal("expected recorded violation")
	}
}

func TestChargeRetryBackoff(t *testing.T) {
	b := New(Limits{MaxLatency: 100 * time.Millisecond})
	if vs := b.ChargeRetryBackoff("s1:A", 40*time.Millisecond); len(vs) != 0 {
		t.Fatalf("within-budget backoff violated: %v", vs)
	}
	if _, rem := b.Remaining(); rem != 60*time.Millisecond {
		t.Fatalf("remaining latency = %s, want 60ms", rem)
	}
	vs := b.ChargeRetryBackoff("s1:A", 80*time.Millisecond)
	if len(vs) != 1 || vs[0].Dimension != DimLatency {
		t.Fatalf("overshooting backoff: %v", vs)
	}
	rep := b.Snapshot()
	if rep.Retries != 2 {
		t.Fatalf("Retries = %d, want 2", rep.Retries)
	}
	if rep.Charges != 0 {
		t.Fatalf("backoff counted as a step charge: %d", rep.Charges)
	}
	if rep.CostSpent != 0 {
		t.Fatalf("backoff charged cost: %v", rep.CostSpent)
	}
}
