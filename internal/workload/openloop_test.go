package workload

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"
)

func TestOpenLoopDeterministicPoisson(t *testing.T) {
	cfg := OpenLoopConfig{Rate: 200, Duration: 2 * time.Second, Tenants: []string{"a", "b", "c"}}
	one := OpenLoop(7, cfg)
	two := OpenLoop(7, cfg)
	if len(one) == 0 {
		t.Fatal("no arrivals generated")
	}
	if len(one) != len(two) {
		t.Fatalf("same seed, different schedules: %d vs %d", len(one), len(two))
	}
	for i := range one {
		if one[i] != two[i] {
			t.Fatalf("arrival %d differs: %+v vs %+v", i, one[i], two[i])
		}
	}
	// Realized rate within 25% of the offered rate (Poisson noise at
	// ~400 expected arrivals is well inside that).
	rate := OfferedRate(one, cfg.Duration)
	if math.Abs(rate-cfg.Rate) > cfg.Rate*0.25 {
		t.Errorf("realized rate %.1f/s, offered %.1f/s", rate, cfg.Rate)
	}
	// Monotone schedule, bounded duration, tenants from the configured set.
	tenants := map[string]bool{}
	for i, a := range one {
		if i > 0 && a.At <= one[i-1].At {
			t.Fatalf("arrival %d not after %d", i, i-1)
		}
		if a.At >= cfg.Duration {
			t.Fatalf("arrival %d at %s beyond duration", i, a.At)
		}
		if a.Query.Text == "" {
			t.Fatalf("arrival %d has empty utterance", i)
		}
		tenants[a.Tenant] = true
	}
	if len(tenants) != 3 {
		t.Errorf("tenants drawn = %v, want all 3", tenants)
	}
}

func TestOpenLoopBurstRaisesRate(t *testing.T) {
	base := OpenLoopConfig{Rate: 100, Duration: 4 * time.Second}
	burst := base
	burst.Burst = BurstConfig{Factor: 5, On: 500 * time.Millisecond, Off: 500 * time.Millisecond}
	n, nb := len(OpenLoop(11, base)), len(OpenLoop(11, burst))
	// Half the time at 5x: expected realized load 3x the base process.
	if nb < n*2 {
		t.Errorf("burst schedule %d arrivals vs base %d, want >= 2x", nb, n)
	}
}

func TestReplayIsOpenLoop(t *testing.T) {
	arrivals := OpenLoop(3, OpenLoopConfig{Rate: 500, Duration: 300 * time.Millisecond})
	var mu sync.Mutex
	served := 0
	start := time.Now()
	// Each invocation is slower than the mean inter-arrival gap; a closed
	// loop would take len(arrivals) * 10ms serially.
	Replay(context.Background(), arrivals, func(Arrival) {
		time.Sleep(10 * time.Millisecond)
		mu.Lock()
		served++
		mu.Unlock()
	})
	wall := time.Since(start)
	if served != len(arrivals) {
		t.Fatalf("served %d of %d", served, len(arrivals))
	}
	closedLoop := time.Duration(len(arrivals)) * 10 * time.Millisecond
	if wall >= closedLoop {
		t.Errorf("replay wall %s not open-loop (serial floor %s)", wall, closedLoop)
	}
}

func TestReplayCancellation(t *testing.T) {
	arrivals := OpenLoop(5, OpenLoopConfig{Rate: 50, Duration: 10 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	served := 0
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	done := make(chan struct{})
	go func() {
		Replay(ctx, arrivals, func(Arrival) {
			mu.Lock()
			served++
			mu.Unlock()
		})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Replay did not return after cancellation")
	}
	mu.Lock()
	defer mu.Unlock()
	if served >= len(arrivals) {
		t.Errorf("cancellation served the whole %d-arrival schedule", served)
	}
}

func TestPercentile(t *testing.T) {
	lat := []time.Duration{5, 1, 4, 2, 3} // unsorted on purpose
	if got := Percentile(lat, 50); got != 3 {
		t.Errorf("p50 = %d, want 3", got)
	}
	if got := Percentile(lat, 100); got != 5 {
		t.Errorf("p100 = %d, want 5", got)
	}
	if got := Percentile(nil, 99); got != 0 {
		t.Errorf("empty p99 = %d, want 0", got)
	}
}
