# Build, verify and bench targets. `make ci` is what the GitHub Actions
# workflow runs on every push: formatting, vet, build, and the full test
# suite under the race detector.

GO ?= go

.PHONY: all build test race vet fmt-check bench ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Relational-engine benchmarks, including the statement-cache comparison
# (BenchmarkPointQueryUncached vs Cached/Prepared).
bench:
	$(GO) test ./internal/relational/ -run XXX -bench . -benchmem

ci: fmt-check vet build race
