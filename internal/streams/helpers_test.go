package streams

import "os"

// openAppend opens path for appending; test helper for crash simulation.
func openAppend(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
}
