// Package docstore implements an embedded document database: named
// collections of JSON-like documents with field queries, secondary indexes,
// sorting and projection.
//
// In the blueprint architecture it plays the role of the enterprise's
// document databases — the PROFILES collection of job-seeker profiles and
// resumes (§II, §V-D). The data registry exposes its collections and fields
// so the data planner can discover and query them.
package docstore

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Common errors.
var (
	ErrCollectionExists   = errors.New("docstore: collection already exists")
	ErrCollectionNotFound = errors.New("docstore: collection not found")
	ErrDocNotFound        = errors.New("docstore: document not found")
	ErrDuplicateID        = errors.New("docstore: duplicate document id")
)

// Doc is a single document. Field values are JSON-like: string, float64,
// int, int64, bool, nil, []any, map[string]any.
type Doc map[string]any

// Clone returns a deep-enough copy (top level and nested maps/slices).
func (d Doc) Clone() Doc {
	return cloneValue(map[string]any(d)).(map[string]any)
}

func cloneValue(v any) any {
	switch x := v.(type) {
	case map[string]any:
		out := make(map[string]any, len(x))
		for k, vv := range x {
			out[k] = cloneValue(vv)
		}
		return out
	case Doc:
		return cloneValue(map[string]any(x))
	case []any:
		out := make([]any, len(x))
		for i, vv := range x {
			out[i] = cloneValue(vv)
		}
		return out
	default:
		return v
	}
}

// Get returns a (possibly dotted) field path value: "skills.0" or
// "address.city".
func (d Doc) Get(path string) (any, bool) {
	var cur any = map[string]any(d)
	for _, part := range strings.Split(path, ".") {
		switch node := cur.(type) {
		case map[string]any:
			v, ok := node[part]
			if !ok {
				return nil, false
			}
			cur = v
		case Doc:
			v, ok := node[part]
			if !ok {
				return nil, false
			}
			cur = v
		case []any:
			idx := -1
			if _, err := fmt.Sscanf(part, "%d", &idx); err != nil || idx < 0 || idx >= len(node) {
				return nil, false
			}
			cur = node[idx]
		default:
			return nil, false
		}
	}
	return cur, true
}

// collection stores documents by id.
type collection struct {
	mu      sync.RWMutex
	name    string
	docs    map[string]Doc
	order   []string
	indexes map[string]map[string][]string // field -> valueKey -> ids
}

// Store is a set of collections.
type Store struct {
	mu    sync.RWMutex
	colls map[string]*collection
	order []string
}

// NewStore creates an empty document store.
func NewStore() *Store {
	return &Store{colls: make(map[string]*collection)}
}

// CreateCollection registers a new collection.
func (s *Store) CreateCollection(name string) error {
	key := strings.ToLower(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.colls[key]; ok {
		return fmt.Errorf("%w: %s", ErrCollectionExists, name)
	}
	s.colls[key] = &collection{name: name, docs: make(map[string]Doc), indexes: make(map[string]map[string][]string)}
	s.order = append(s.order, key)
	return nil
}

// EnsureCollection creates the collection if absent.
func (s *Store) EnsureCollection(name string) {
	if err := s.CreateCollection(name); err != nil && !errors.Is(err, ErrCollectionExists) {
		panic(err) // unreachable: CreateCollection only returns ErrCollectionExists
	}
}

func (s *Store) coll(name string) (*collection, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.colls[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrCollectionNotFound, name)
	}
	return c, nil
}

// CollectionInfo summarizes one collection for the data registry.
type CollectionInfo struct {
	Name    string
	Docs    int
	Fields  []string // union of top-level field names (sorted)
	Indexed []string // indexed fields (sorted)
}

// Collections lists collection summaries in creation order.
func (s *Store) Collections() []CollectionInfo {
	s.mu.RLock()
	keys := append([]string(nil), s.order...)
	s.mu.RUnlock()
	out := make([]CollectionInfo, 0, len(keys))
	for _, k := range keys {
		s.mu.RLock()
		c, ok := s.colls[k]
		s.mu.RUnlock()
		if !ok {
			continue
		}
		out = append(out, c.info())
	}
	return out
}

func (c *collection) info() CollectionInfo {
	c.mu.RLock()
	defer c.mu.RUnlock()
	fields := map[string]bool{}
	for _, d := range c.docs {
		for f := range d {
			fields[f] = true
		}
	}
	ci := CollectionInfo{Name: c.name, Docs: len(c.docs)}
	for f := range fields {
		ci.Fields = append(ci.Fields, f)
	}
	sort.Strings(ci.Fields)
	for f := range c.indexes {
		ci.Indexed = append(ci.Indexed, f)
	}
	sort.Strings(ci.Indexed)
	return ci
}

// Insert stores doc under id. The document is cloned on the way in.
func (s *Store) Insert(coll, id string, doc Doc) error {
	c, err := s.coll(coll)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.docs[id]; ok {
		return fmt.Errorf("%w: %s/%s", ErrDuplicateID, coll, id)
	}
	cp := doc.Clone()
	c.docs[id] = cp
	c.order = append(c.order, id)
	for field, ix := range c.indexes {
		if v, ok := cp.Get(field); ok {
			k := valueKey(v)
			ix[k] = append(ix[k], id)
		}
	}
	return nil
}

// Upsert stores doc under id, replacing any existing document.
func (s *Store) Upsert(coll, id string, doc Doc) error {
	c, err := s.coll(coll)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.docs[id]; ok {
		c.unindexLocked(id, old)
	} else {
		c.order = append(c.order, id)
	}
	cp := doc.Clone()
	c.docs[id] = cp
	for field, ix := range c.indexes {
		if v, ok := cp.Get(field); ok {
			k := valueKey(v)
			ix[k] = append(ix[k], id)
		}
	}
	return nil
}

// Get returns the document stored under id (a copy).
func (s *Store) Get(coll, id string) (Doc, error) {
	c, err := s.coll(coll)
	if err != nil {
		return nil, err
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	d, ok := c.docs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrDocNotFound, coll, id)
	}
	return d.Clone(), nil
}

// Delete removes the document stored under id.
func (s *Store) Delete(coll, id string) error {
	c, err := s.coll(coll)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.docs[id]
	if !ok {
		return fmt.Errorf("%w: %s/%s", ErrDocNotFound, coll, id)
	}
	c.unindexLocked(id, d)
	delete(c.docs, id)
	for i, x := range c.order {
		if x == id {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	return nil
}

func (c *collection) unindexLocked(id string, d Doc) {
	for field, ix := range c.indexes {
		if v, ok := d.Get(field); ok {
			k := valueKey(v)
			ids := ix[k]
			for i, x := range ids {
				if x == id {
					ix[k] = append(ids[:i], ids[i+1:]...)
					break
				}
			}
		}
	}
}

// CreateIndex builds an equality index over a (possibly dotted) field path.
func (s *Store) CreateIndex(coll, field string) error {
	c, err := s.coll(coll)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.indexes[field]; ok {
		return nil
	}
	ix := make(map[string][]string)
	for _, id := range c.order {
		if v, ok := c.docs[id].Get(field); ok {
			k := valueKey(v)
			ix[k] = append(ix[k], id)
		}
	}
	c.indexes[field] = ix
	return nil
}

// valueKey renders an index key for a field value; numbers are unified so
// 3 and 3.0 collide intentionally.
func valueKey(v any) string {
	switch x := v.(type) {
	case nil:
		return "null"
	case string:
		return "s:" + x
	case bool:
		if x {
			return "b:1"
		}
		return "b:0"
	case int:
		return fmt.Sprintf("n:%g", float64(x))
	case int64:
		return fmt.Sprintf("n:%g", float64(x))
	case float64:
		return fmt.Sprintf("n:%g", x)
	default:
		return fmt.Sprintf("o:%v", x)
	}
}
