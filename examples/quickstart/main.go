// Quickstart: boot a blueprint System, open a session, and run one
// conversational request end to end through the full architecture —
// intent classification, NL2Q, SQL execution and summarization, all
// orchestrated over streams.
package main

import (
	"fmt"
	"log"
	"time"

	"blueprint"
)

func main() {
	sys, err := blueprint.New(blueprint.Config{ModelAccuracy: 1.0})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	sess, err := sys.StartSession("")
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	questions := []string{
		"How many jobs are in San Francisco?",
		"average salary per city",
		"Summarize the applicants for job 12",
	}
	for _, q := range questions {
		fmt.Printf("user> %s\n", q)
		answer, err := sess.Ask(q, 10*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("system> %s\n\n", answer)
	}

	// The entire orchestration is observable on the streams.
	fmt.Printf("session flow: %d messages across %d components\n",
		len(sess.Flow()), len(sys.AgentRegistry.List()))
}
