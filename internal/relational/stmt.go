package relational

import (
	"container/list"
	"strings"
	"sync"
)

// DefaultStmtCacheCapacity is the statement-cache size a new DB starts with.
// 256 distinct SQL texts comfortably covers the templated hot paths of the
// blueprint (NL2Q output, data-plan operators, agent queries) while bounding
// memory for adversarial workloads.
const DefaultStmtCacheCapacity = 256

// Stmt is a prepared statement: a parsed, reusable form of one SQL text
// plus a slot holding its compiled plan. Preparing once and executing many
// times amortizes lexing, parsing and plan compilation, the dominant fixed
// costs of short queries. A Stmt is immutable after Prepare and safe for
// concurrent use by multiple goroutines; the compiled plan is revalidated
// against per-table schema versions at execution time, so a Stmt held
// across DDL keeps working (it recompiles against the new schema, or fails
// if its table is gone).
type Stmt struct {
	db   *DB
	sql  string
	st   Statement
	slot *planSlot
}

// Prepare parses sql once and returns a reusable statement. The parse (and
// the plan slot, so compilations are shared too) is served from and
// populates the DB's statement cache, so repeated Prepare calls for the
// same text are cheap.
func (db *DB) Prepare(sql string) (*Stmt, error) {
	st, slot, err := db.parseCached(sql)
	if err != nil {
		return nil, err
	}
	return &Stmt{db: db, sql: sql, st: st, slot: slot}, nil
}

// SQL returns the statement's original text.
func (s *Stmt) SQL() string { return s.sql }

// Query executes the prepared statement with optional positional parameters
// bound to '?' placeholders.
func (s *Stmt) Query(params ...any) (*Result, error) {
	return s.db.runLogged(s.sql, s.st, s.slot, params...)
}

// Exec executes the prepared statement and reports the number of affected
// rows, mirroring DB.Exec.
func (s *Stmt) Exec(params ...any) (int, error) {
	res, err := s.db.runLogged(s.sql, s.st, s.slot, params...)
	if err != nil {
		return 0, err
	}
	return affectedCount(res), nil
}

// CacheStats reports statement-cache effectiveness counters.
type CacheStats struct {
	// Hits counts lookups served from the cache (parse skipped).
	Hits uint64
	// Misses counts lookups that had to parse.
	Misses uint64
	// Evictions counts entries dropped by the LRU bound.
	Evictions uint64
	// Invalidations counts DDL-triggered flush events. Invalidation is
	// per-table: each DDL statement flushes only the cached statements
	// referencing the altered table, so hot statements over other tables
	// keep their parsed form.
	Invalidations uint64
	// Compiles counts plan compilations (compile.go). A steady workload of
	// repeated statements should show Compiles plateauing while Hits grows:
	// prepared and cached statements skip parse and compile alike. DDL on a
	// referenced table (CREATE/DROP) forces a recompile.
	Compiles uint64
	// Size is the current number of cached statements.
	Size int
	// Capacity is the configured bound (0 = caching disabled).
	Capacity int
}

// HitRate returns Hits/(Hits+Misses), or 0 when no lookups happened.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// CacheStats returns a snapshot of the DB's statement-cache counters.
func (db *DB) CacheStats() CacheStats {
	s := db.stmts.snapshot()
	s.Compiles = db.compiles.Load()
	return s
}

// ResetCacheStats zeroes the hit/miss/eviction/invalidation/compile counters
// without dropping cached statements, so callers can meter one workload
// phase.
func (db *DB) ResetCacheStats() {
	db.stmts.resetStats()
	db.compiles.Store(0)
}

// SetStmtCacheCapacity rebounds the statement cache. Shrinking evicts
// least-recently-used entries; 0 disables caching entirely (every Query,
// Exec and Prepare re-parses).
func (db *DB) SetStmtCacheCapacity(n int) { db.stmts.setCapacity(n) }

// parseCached returns the parsed form of sql and its plan slot, consulting
// the statement cache first. Only DML/query statements are cached: DDL is
// rare, and executing it invalidates the touched table's statements anyway.
// The slot rides along with the cache entry, so every caller of the same
// text (Query, Exec, Prepare handles) shares one compiled plan.
func (db *DB) parseCached(sql string) (Statement, *planSlot, error) {
	if st, slot, ok := db.stmts.lookup(sql); ok {
		return st, slot, nil
	}
	st, err := Parse(sql)
	if err != nil {
		return nil, nil, err
	}
	slot := &planSlot{}
	if cacheableStmt(st) {
		slot = db.stmts.insert(sql, st, stmtTables(st), slot)
	}
	return st, slot, nil
}

// cacheableStmt reports whether a statement kind is worth caching.
func cacheableStmt(st Statement) bool {
	switch st.(type) {
	case *SelectStmt, *InsertStmt, *UpdateStmt, *DeleteStmt:
		return true
	default:
		return false
	}
}

// stmtTables returns the lowercased base-table names a cacheable statement
// references (the FROM table plus joined tables for SELECT; the target table
// for DML) — the invalidation key set for per-table DDL flushes.
func stmtTables(st Statement) []string {
	switch s := st.(type) {
	case *SelectStmt:
		out := []string{strings.ToLower(s.From.Table)}
		for _, j := range s.Joins {
			t := strings.ToLower(j.Table.Table)
			dup := false
			for _, have := range out {
				if have == t {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, t)
			}
		}
		return out
	case *InsertStmt:
		return []string{strings.ToLower(s.Table)}
	case *UpdateStmt:
		return []string{strings.ToLower(s.Table)}
	case *DeleteStmt:
		return []string{strings.ToLower(s.Table)}
	default:
		return nil
	}
}

// stmtCache is a concurrency-safe bounded LRU of parsed statements keyed by
// SQL text. DDL (CREATE/DROP TABLE, CREATE INDEX) invalidates per table:
// only the cached statements referencing the altered table are flushed, so
// the hot paths of untouched tables keep their parsed plans across schema
// churn elsewhere (e.g. scratch tables created and dropped by agents).
type stmtCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element

	hits          uint64
	misses        uint64
	evictions     uint64
	invalidations uint64
}

type stmtEntry struct {
	sql    string
	st     Statement
	tables []string // lowercased tables the statement touches
	slot   *planSlot
}

func newStmtCache(capacity int) *stmtCache {
	return &stmtCache{
		cap:     capacity,
		ll:      list.New(),
		entries: make(map[string]*list.Element),
	}
}

func (c *stmtCache) lookup(sql string) (Statement, *planSlot, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[sql]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		e := el.Value.(*stmtEntry)
		return e.st, e.slot, true
	}
	c.misses++
	return nil, nil, false
}

// insert caches the parsed statement with its plan slot and returns the
// resident slot — the caller's own slot when it won, the earlier entry's
// when it lost a parse race (so the compiled plan is still shared).
func (c *stmtCache) insert(sql string, st Statement, tables []string, slot *planSlot) *planSlot {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap <= 0 {
		return slot
	}
	if el, ok := c.entries[sql]; ok {
		// Lost a race with another goroutine parsing the same text; keep
		// the resident entry.
		c.ll.MoveToFront(el)
		return el.Value.(*stmtEntry).slot
	}
	el := c.ll.PushFront(&stmtEntry{sql: sql, st: st, tables: tables, slot: slot})
	c.entries[sql] = el
	for c.ll.Len() > c.cap {
		c.evictOldestLocked()
	}
	return slot
}

func (c *stmtCache) evictOldestLocked() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	c.ll.Remove(el)
	delete(c.entries, el.Value.(*stmtEntry).sql)
	c.evictions++
}

// invalidateTable flushes the cached statements referencing the given table
// (called after successful DDL on it). Statements over other tables stay
// resident: a scratch-table CREATE/DROP no longer evicts the enterprise hot
// path. DDL is rare, so the linear sweep over at most cap entries is cheap.
func (c *stmtCache) invalidateTable(table string) {
	key := strings.ToLower(table)
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		e := el.Value.(*stmtEntry)
		for _, t := range e.tables {
			if t == key {
				c.ll.Remove(el)
				delete(c.entries, e.sql)
				break
			}
		}
	}
	c.invalidations++
}

// flushAll drops every cached statement (a durability Restore replaced the
// whole catalog, so no parsed form or compiled plan can be trusted).
func (c *stmtCache) flushAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.entries = make(map[string]*list.Element)
	c.invalidations++
}

func (c *stmtCache) setCapacity(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n < 0 {
		n = 0
	}
	c.cap = n
	if n == 0 {
		c.ll.Init()
		c.entries = make(map[string]*list.Element)
		return
	}
	for c.ll.Len() > n {
		c.evictOldestLocked()
	}
}

func (c *stmtCache) snapshot() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
		Size:          c.ll.Len(),
		Capacity:      c.cap,
	}
}

func (c *stmtCache) resetStats() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits, c.misses, c.evictions, c.invalidations = 0, 0, 0, 0
}
