package trace

import (
	"strings"
	"testing"
	"unicode/utf8"

	"blueprint/internal/streams"
)

func buildFlow(t *testing.T) (*streams.Store, []Step) {
	t.Helper()
	s := streams.NewStore()
	t.Cleanup(func() { s.Close() })
	if _, err := s.CreateStream("sess:user", streams.StreamInfo{Session: "sess"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateStream("sess:control", streams.StreamInfo{Session: "sess"}); err != nil {
		t.Fatal(err)
	}
	msgs := []streams.Message{
		{Stream: "sess:user", Kind: streams.Data, Sender: "user", Tags: []string{"utterance"}, Payload: "hello"},
		{Stream: "sess:user", Kind: streams.Data, Sender: "IC", Tags: []string{"intent"}, Payload: map[string]any{"intent": "open_query"}},
		{Stream: "sess:control", Kind: streams.Control, Sender: "coordinator",
			Directive: &streams.Directive{Op: streams.OpExecuteAgent, Agent: "SQL"}},
		{Stream: "sess:user", Kind: streams.Data, Sender: "SQL", Tags: []string{"ROWS"}, Payload: strings.Repeat("x", 100)},
	}
	for _, m := range msgs {
		if _, err := s.Append(m); err != nil {
			t.Fatal(err)
		}
	}
	return s, Flow(s, "sess")
}

func TestFlowExtraction(t *testing.T) {
	_, flow := buildFlow(t)
	if len(flow) != 4 {
		t.Fatalf("flow = %d steps", len(flow))
	}
	if flow[2].Op != streams.OpExecuteAgent || flow[2].Agent != "SQL" {
		t.Fatalf("control step = %+v", flow[2])
	}
	if len(flow[3].Payload) != 63 { // truncated to 60 + "..."
		t.Fatalf("payload not truncated: %d", len(flow[3].Payload))
	}
	for i := 1; i < len(flow); i++ {
		if flow[i].TS <= flow[i-1].TS {
			t.Fatal("flow not ordered")
		}
	}
}

func TestFlowTruncationIsRuneSafe(t *testing.T) {
	s := streams.NewStore()
	t.Cleanup(func() { s.Close() })
	if _, err := s.CreateStream("sess:user", streams.StreamInfo{Session: "sess"}); err != nil {
		t.Fatal(err)
	}
	// 4-byte runes positioned so a byte slice at 60 would land mid-rune.
	payload := strings.Repeat("x", 59) + strings.Repeat("\U0001F600", 4)
	if _, err := s.Append(streams.Message{
		Stream: "sess:user", Kind: streams.Data, Sender: "user", Payload: payload,
	}); err != nil {
		t.Fatal(err)
	}
	flow := Flow(s, "sess")
	got := flow[0].Payload
	if !strings.HasSuffix(got, "...") {
		t.Fatalf("long payload not truncated: %q", got)
	}
	if !utf8.ValidString(got) {
		t.Fatalf("truncation split a rune: %q", got)
	}
}

func TestMatchSequence(t *testing.T) {
	_, flow := buildFlow(t)
	pattern := []Matcher{
		{Sender: "user", Tag: "utterance", Kind: streams.Data},
		{Sender: "IC", Tag: "intent", Kind: streams.Data},
		{Op: streams.OpExecuteAgent, Agent: "SQL", Kind: streams.Control},
		{Sender: "SQL", Kind: streams.Data},
	}
	idx, ok := MatchSequence(flow, pattern)
	if !ok || len(idx) != 4 {
		t.Fatalf("sequence not matched: %v %v\n%s", idx, ok, Render(flow))
	}
	// Order matters: reversed pattern must fail.
	rev := []Matcher{pattern[3], pattern[0]}
	if _, ok := MatchSequence(flow, rev); ok {
		t.Fatal("reversed pattern matched")
	}
	// Missing sender fails.
	if _, ok := MatchSequence(flow, []Matcher{{Sender: "ghost", AnyKind: true}}); ok {
		t.Fatal("ghost matched")
	}
	// AnyKind matches across kinds.
	if _, ok := MatchSequence(flow, []Matcher{{Sender: "coordinator", AnyKind: true}}); !ok {
		t.Fatal("AnyKind failed")
	}
}

func TestSendersAndCounts(t *testing.T) {
	_, flow := buildFlow(t)
	senders := Senders(flow)
	want := []string{"user", "IC", "coordinator", "SQL"}
	if len(senders) != len(want) {
		t.Fatalf("senders = %v", senders)
	}
	for i := range want {
		if senders[i] != want[i] {
			t.Fatalf("senders = %v, want %v", senders, want)
		}
	}
	bySender := CountBySender(flow)
	if bySender["user"] != 1 || bySender["SQL"] != 1 {
		t.Fatalf("bySender = %v", bySender)
	}
	byOp := CountByOp(flow)
	if byOp[streams.OpExecuteAgent] != 1 {
		t.Fatalf("byOp = %v", byOp)
	}
}

func TestRender(t *testing.T) {
	_, flow := buildFlow(t)
	out := Render(flow)
	for _, want := range []string{"user", "EXECUTE_AGENT(SQL)", "tags=[utterance]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
