package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"blueprint"
	"blueprint/internal/obs"
	"blueprint/internal/resilience"
)

func newTestServer(t *testing.T) *Server {
	t.Helper()
	return newTestServerCfg(t, blueprint.Config{ModelAccuracy: 1.0})
}

func newTestServerCfg(t *testing.T, cfg blueprint.Config) *Server {
	t.Helper()
	sys, err := blueprint.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	return New(sys, Options{})
}

func do(t *testing.T, h http.Handler, method, path, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var out map[string]any
	_ = json.Unmarshal(rec.Body.Bytes(), &out)
	return rec, out
}

func TestSessionLifecycleOverHTTP(t *testing.T) {
	s := newTestServer(t)
	rec, out := do(t, s, "POST", "/sessions", "")
	if rec.Code != http.StatusCreated {
		t.Fatalf("create = %d %s", rec.Code, rec.Body)
	}
	id, _ := out["id"].(string)
	if !strings.HasPrefix(id, "session:") {
		t.Fatalf("id = %q", id)
	}
	if s.SessionCount() != 1 {
		t.Fatalf("session count = %d", s.SessionCount())
	}

	rec, out = do(t, s, "POST", "/sessions/"+strings.TrimPrefix(id, "session:")+"/ask",
		`{"text": "How many jobs are in San Francisco?"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("ask = %d %s", rec.Code, rec.Body)
	}
	if ans, _ := out["answer"].(string); !strings.Contains(ans, "Summary:") {
		t.Fatalf("answer = %v", out)
	}

	rec, out = do(t, s, "POST", "/sessions/"+strings.TrimPrefix(id, "session:")+"/click",
		`{"action": "select_job", "job_id": 3}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("click = %d %s", rec.Code, rec.Body)
	}
	if ans, _ := out["answer"].(string); !strings.Contains(ans, "Job 3") {
		t.Fatalf("click answer = %v", out)
	}

	req := httptest.NewRequest("GET", "/sessions/"+strings.TrimPrefix(id, "session:")+"/flow", nil)
	rec2 := httptest.NewRecorder()
	s.ServeHTTP(rec2, req)
	if rec2.Code != http.StatusOK {
		t.Fatalf("flow = %d", rec2.Code)
	}
	var flow []map[string]any
	if err := json.Unmarshal(rec2.Body.Bytes(), &flow); err != nil || len(flow) == 0 {
		t.Fatalf("flow body = %v err=%v", len(flow), err)
	}
}

func TestErrorsOverHTTP(t *testing.T) {
	s := newTestServer(t)
	rec, _ := do(t, s, "POST", "/sessions/999/ask", `{"text": "hi"}`)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown session = %d", rec.Code)
	}
	// Bad bodies.
	_, out := do(t, s, "POST", "/sessions", "")
	id := strings.TrimPrefix(out["id"].(string), "session:")
	rec, _ = do(t, s, "POST", "/sessions/"+id+"/ask", `{}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("empty text = %d", rec.Code)
	}
	rec, _ = do(t, s, "POST", "/sessions/"+id+"/click", `not json`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad click body = %d", rec.Code)
	}
}

func TestMemoOverHTTP(t *testing.T) {
	s := newTestServer(t)
	rec, out := do(t, s, "GET", "/memo", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("/memo = %d %s", rec.Code, rec.Body)
	}
	if out["enabled"] != true {
		t.Fatalf("memo disabled by default: %v", out)
	}
	for _, field := range []string{"hits", "misses", "hit_rate", "coalesced", "evictions", "invalidations", "entries"} {
		if _, ok := out[field]; !ok {
			t.Fatalf("/memo missing %q: %v", field, out)
		}
	}
	rec, out = do(t, s, "GET", "/stats", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("/stats = %d", rec.Code)
	}
	if _, ok := out["memo_hit_rate"]; !ok {
		t.Fatalf("/stats missing memo_hit_rate: %v", out)
	}
}

func TestMetricsExpositionOverHTTP(t *testing.T) {
	s := newTestServer(t)
	// Drive one ask so the ask counter and latency histogram have samples.
	_, out := do(t, s, "POST", "/sessions", "")
	id := strings.TrimPrefix(out["id"].(string), "session:")
	rec, _ := do(t, s, "POST", "/sessions/"+id+"/ask", `{"text": "How many jobs are in San Francisco?"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("ask = %d %s", rec.Code, rec.Body)
	}

	req := httptest.NewRequest("GET", "/metrics", nil)
	rec2 := httptest.NewRecorder()
	s.ServeHTTP(rec2, req)
	if rec2.Code != http.StatusOK {
		t.Fatalf("/metrics = %d", rec2.Code)
	}
	if ct := rec2.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content-type = %q", ct)
	}
	body := rec2.Body.String()
	for _, want := range []string{
		"# TYPE blueprint_asks_total counter",
		"# TYPE blueprint_ask_latency_seconds histogram",
		`blueprint_ask_latency_seconds_bucket{le="+Inf"}`,
		"blueprint_ask_latency_seconds_sum",
		"blueprint_memo_hits_total",
		"blueprint_memo_misses_total",
		"blueprint_stmt_cache_shape_hits_total",
		"blueprint_scheduler_busy_workers",
		"blueprint_durability_fsyncs_total",
		"# TYPE blueprint_slo_burn_rate gauge",
		"blueprint_events_retained",
		"blueprint_slow_ask_captures_total",
		"blueprint_trace_sessions",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}
}

func TestTraceOverHTTP(t *testing.T) {
	s := newTestServer(t)
	rec, _ := do(t, s, "GET", "/trace/does-not-exist", "")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown trace = %d", rec.Code)
	}

	_, out := do(t, s, "POST", "/sessions", "")
	id := strings.TrimPrefix(out["id"].(string), "session:")
	// A summarize intent drives the full orchestration: the Agentic
	// Employer emits a plan, the coordinator service executes it through
	// the scheduler, memo and the Summarizer agent.
	rec, _ = do(t, s, "POST", "/sessions/"+id+"/ask", `{"text": "Summarize the applicants for job 3"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("ask = %d %s", rec.Code, rec.Body)
	}

	// The plan span records just after the display answer is delivered;
	// poll briefly for the tree to complete.
	want := []string{"session", "coordinator", "scheduler", "memo", "agent"}
	var components map[string]bool
	var tree string
	for tries := 0; tries < 100; tries++ {
		rec, out = do(t, s, "GET", "/trace/"+id, "")
		if rec.Code != http.StatusOK {
			t.Fatalf("/trace = %d %s", rec.Code, rec.Body)
		}
		tree, _ = out["tree"].(string)
		spans, _ := out["spans"].([]any)
		components = map[string]bool{}
		for _, sp := range spans {
			m := sp.(map[string]any)
			components[m["component"].(string)] = true
		}
		ok := true
		for _, c := range want {
			ok = ok && components[c]
		}
		if ok {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if out["session"] != "session:"+id {
		t.Fatalf("trace session = %v", out["session"])
	}
	if !strings.Contains(tree, "session/ask") {
		t.Fatalf("trace tree missing root:\n%s", tree)
	}
	for _, c := range want {
		if !components[c] {
			t.Fatalf("trace missing component %q (got %v)\n%s", c, components, tree)
		}
	}
}

// TestOverloadShedAndDegradeOverHTTP pins the daemon's overload contract:
// with a single governed slot occupied, a same-tenant repeat ask is served
// from the stale whole-ask memo (200 + "degraded": true) and a novel ask is
// shed with 429 + Retry-After. MaxConcurrent 1 with the default 0.5 tenant
// share makes the shed deterministic — the share clamps to one slot, and a
// tenant already holding its share sheds immediately under contention
// instead of queueing.
func TestOverloadShedAndDegradeOverHTTP(t *testing.T) {
	s := newTestServerCfg(t, blueprint.Config{
		ModelAccuracy: 1.0,
		Governor:      resilience.GovernorConfig{MaxConcurrent: 1, RetryAfter: 2 * time.Second},
	})
	_, out := do(t, s, "POST", "/sessions", "")
	id := strings.TrimPrefix(out["id"].(string), "session:")

	// Baseline ask: admitted (slot free) and memoized for the degraded path.
	const repeat = `{"text": "How many jobs are in San Francisco?"}`
	rec, out := do(t, s, "POST", "/sessions/"+id+"/ask", repeat)
	if rec.Code != http.StatusOK {
		t.Fatalf("baseline ask = %d %s", rec.Code, rec.Body)
	}
	if _, ok := out["degraded"]; ok {
		t.Fatalf("baseline ask marked degraded: %v", out)
	}

	// Slow agent invocations down so a holder ask keeps the slot occupied
	// long enough to observe the brownout.
	inj := resilience.NewInjector(1, resilience.Rule{
		Site: resilience.SiteAgent, Kind: resilience.KindLatency,
		Probability: 1, Latency: 300 * time.Millisecond,
	})
	resilience.Activate(inj)
	defer resilience.Deactivate()
	holder := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		req := httptest.NewRequest("POST", "/sessions/"+id+"/ask",
			strings.NewReader(`{"text": "Summarize the applicants for job 3"}`))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		holder <- rec
	}()
	for deadline := time.Now().Add(10 * time.Second); s.sys.GovernorStats().InFlight == 0; {
		if time.Now().After(deadline) {
			t.Fatal("holder ask never occupied the governor slot")
		}
		time.Sleep(time.Millisecond)
	}

	// Repeat text while the slot is held: shed, but the stale memo answer is
	// served, marked degraded with its age.
	rec, out = do(t, s, "POST", "/sessions/"+id+"/ask", repeat)
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded ask = %d %s", rec.Code, rec.Body)
	}
	if out["degraded"] != true {
		t.Fatalf("shed repeat ask not marked degraded: %v", out)
	}
	if _, ok := out["stale_for_ms"]; !ok {
		t.Fatalf("degraded answer missing stale_for_ms: %v", out)
	}
	if ans, _ := out["answer"].(string); !strings.Contains(ans, "Summary:") {
		t.Fatalf("degraded answer = %v", out)
	}

	// Novel text while the slot is held: nothing stale to serve — 429 with
	// the governor's advisory backoff in whole seconds.
	rec, out = do(t, s, "POST", "/sessions/"+id+"/ask",
		`{"text": "average salary per city for salary over 120000"}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("novel ask under overload = %d %s", rec.Code, rec.Body)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", ra)
	}
	if ms, _ := out["retry_after_ms"].(float64); ms != 2000 {
		t.Fatalf("retry_after_ms = %v", out)
	}

	resilience.Deactivate()
	if hrec := <-holder; hrec.Code != http.StatusOK {
		t.Fatalf("holder ask = %d %s", hrec.Code, hrec.Body)
	}

	// Slot free again: the same repeat ask is admitted and served fresh.
	rec, out = do(t, s, "POST", "/sessions/"+id+"/ask", repeat)
	if rec.Code != http.StatusOK {
		t.Fatalf("post-brownout ask = %d %s", rec.Code, rec.Body)
	}
	if _, ok := out["degraded"]; ok {
		t.Fatalf("post-brownout ask still degraded: %v", out)
	}
	st := s.sys.GovernorStats()
	if st.Admitted < 3 || st.Shed < 2 || st.TenantShed < 2 {
		t.Fatalf("governor ledger = %+v, want >= 3 admitted, >= 2 shed (tenant share)", st)
	}
}

func TestDeployTimeTuningConfig(t *testing.T) {
	// The -parallel / -memo / -no-memo flags plumb straight into these
	// Config fields; a system built with them must come up (and with memo
	// off, /memo reports disabled).
	sys, err := blueprint.New(blueprint.Config{
		ModelAccuracy: 1.0, MaxParallel: 2, MemoCapacity: 16, DisableMemo: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	if sys.Memo != nil {
		t.Fatal("DisableMemo left a memo store")
	}
	if st := sys.MemoStats(); st.Hits != 0 || st.Entries != 0 {
		t.Fatalf("disabled memo stats = %+v", st)
	}
}

func TestIntrospectionOverHTTP(t *testing.T) {
	s := newTestServer(t)
	for _, path := range []string{"/agents", "/data", "/stats", "/memo", "/events", "/slow", "/slo"} {
		req := httptest.NewRequest("GET", path, nil)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s = %d", path, rec.Code)
		}
		if rec.Body.Len() < 10 {
			t.Fatalf("%s body = %q", path, rec.Body)
		}
	}
	rec, _ := do(t, s, "GET", "/stats", "")
	var stats map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats["version"] != blueprint.Version {
		t.Fatalf("stats = %v", stats)
	}
}

// TestTraceIDHeaderOverHTTP pins the X-Trace-Id contract: every ask
// response carries the header — success, degraded and shed (429) alike —
// and the body's trace field matches it.
func TestTraceIDHeaderOverHTTP(t *testing.T) {
	s := newTestServerCfg(t, blueprint.Config{
		ModelAccuracy: 1.0,
		Governor:      resilience.GovernorConfig{MaxConcurrent: 1, RetryAfter: time.Second},
	})
	_, out := do(t, s, "POST", "/sessions", "")
	id := strings.TrimPrefix(out["id"].(string), "session:")

	rec, out := do(t, s, "POST", "/sessions/"+id+"/ask", `{"text": "How many jobs are in San Francisco?"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("ask = %d %s", rec.Code, rec.Body)
	}
	tid := rec.Header().Get("X-Trace-Id")
	if !strings.HasPrefix(tid, "session:"+id+"-") {
		t.Fatalf("X-Trace-Id = %q, want session-prefixed id", tid)
	}
	if out["trace"] != tid {
		t.Fatalf("body trace %v != header %q", out["trace"], tid)
	}

	// Occupy the slot, then shed a novel ask: the 429 must carry the header
	// too (the operator greps /events for exactly this id).
	inj := resilience.NewInjector(1, resilience.Rule{
		Site: resilience.SiteAgent, Kind: resilience.KindLatency,
		Probability: 1, Latency: 300 * time.Millisecond,
	})
	resilience.Activate(inj)
	defer resilience.Deactivate()
	holder := make(chan struct{})
	go func() {
		defer close(holder)
		do(t, s, "POST", "/sessions/"+id+"/ask", `{"text": "Summarize the applicants for job 3"}`)
	}()
	for deadline := time.Now().Add(10 * time.Second); s.sys.GovernorStats().InFlight == 0; {
		if time.Now().After(deadline) {
			t.Fatal("holder ask never occupied the governor slot")
		}
		time.Sleep(time.Millisecond)
	}
	rec, out = do(t, s, "POST", "/sessions/"+id+"/ask", `{"text": "average salary per city for salary over 120000"}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("shed ask = %d %s", rec.Code, rec.Body)
	}
	shedTid := rec.Header().Get("X-Trace-Id")
	if shedTid == "" || shedTid == tid {
		t.Fatalf("shed X-Trace-Id = %q (baseline %q), want a fresh id", shedTid, tid)
	}
	if out["trace"] != shedTid {
		t.Fatalf("shed body trace %v != header %q", out["trace"], shedTid)
	}
	resilience.Deactivate()
	<-holder
}

// TestRetryAfterOnBothShedPaths pins Retry-After on the two 429 paths: the
// immediate shed (tenant over its share / queue full) and the
// queue-timeout shed (admitted to the queue, never got a slot). Two
// tenants make the second tenant queue rather than shed on share.
func TestRetryAfterOnBothShedPaths(t *testing.T) {
	s := newTestServerCfg(t, blueprint.Config{
		ModelAccuracy: 1.0,
		Governor: resilience.GovernorConfig{
			MaxConcurrent: 1, MaxQueue: 1,
			QueueTimeout: 50 * time.Millisecond, RetryAfter: 3 * time.Second,
		},
	})
	_, out := do(t, s, "POST", "/sessions", "")
	id := strings.TrimPrefix(out["id"].(string), "session:")

	inj := resilience.NewInjector(1, resilience.Rule{
		Site: resilience.SiteAgent, Kind: resilience.KindLatency,
		Probability: 1, Latency: 500 * time.Millisecond,
	})
	resilience.Activate(inj)
	defer resilience.Deactivate()
	holder := make(chan struct{})
	go func() {
		defer close(holder)
		req := httptest.NewRequest("POST", "/sessions/"+id+"/ask",
			strings.NewReader(`{"text": "Summarize the applicants for job 3"}`))
		req.Header.Set("X-Tenant", "tenant-a")
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
	}()
	for deadline := time.Now().Add(10 * time.Second); s.sys.GovernorStats().InFlight == 0; {
		if time.Now().After(deadline) {
			t.Fatal("holder ask never occupied the governor slot")
		}
		time.Sleep(time.Millisecond)
	}

	// Path 1 — immediate shed: same tenant already holds its clamped share,
	// so a second ask sheds without queueing.
	req := httptest.NewRequest("POST", "/sessions/"+id+"/ask",
		strings.NewReader(`{"text": "average salary per city for salary over 120000"}`))
	req.Header.Set("X-Tenant", "tenant-a")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("immediate shed = %d %s", rec.Code, rec.Body)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "3" {
		t.Fatalf("immediate shed Retry-After = %q, want \"3\"", ra)
	}

	// Path 2 — queue-timeout shed: a different tenant is under its share,
	// queues, and times out after QueueTimeout while the slot stays held.
	req = httptest.NewRequest("POST", "/sessions/"+id+"/ask",
		strings.NewReader(`{"text": "average salary per city for salary over 120000"}`))
	req.Header.Set("X-Tenant", "tenant-b")
	rec = httptest.NewRecorder()
	start := time.Now()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("queue-timeout shed = %d %s", rec.Code, rec.Body)
	}
	if waited := time.Since(start); waited < 40*time.Millisecond {
		t.Fatalf("queue-timeout shed returned after %s, want >= ~50ms queue wait", waited)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "3" {
		t.Fatalf("queue-timeout shed Retry-After = %q, want \"3\"", ra)
	}
	st := s.sys.GovernorStats()
	if st.QueueTimeouts < 1 {
		t.Fatalf("governor ledger = %+v, want >= 1 queue-timeout shed", st)
	}
	resilience.Deactivate()
	<-holder
}

// TestFlightRecorderEndpointsOverHTTP drives a slow ask over the API and
// reads it back through /events, /slow, /slow/{id} and /slo.
func TestFlightRecorderEndpointsOverHTTP(t *testing.T) {
	obs.SlowAsks.Reset()
	s := newTestServerCfg(t, blueprint.Config{
		ModelAccuracy:    1.0,
		SlowAskThreshold: time.Nanosecond, // everything is slow
		EventLevel:       "debug",         // admit events fire per governed ask
		SLO:              obs.SLOConfig{LatencyTarget: time.Nanosecond},
		Governor:         resilience.GovernorConfig{MaxConcurrent: 4},
	})
	t.Cleanup(func() {
		obs.SlowAsks.SetThreshold(obs.DefaultSlowThreshold)
		obs.Events.SetLevel(obs.LevelInfo)
	})
	_, out := do(t, s, "POST", "/sessions", "")
	id := strings.TrimPrefix(out["id"].(string), "session:")
	evHead := obs.Events.Seq()
	rec, _ := do(t, s, "POST", "/sessions/"+id+"/ask", `{"text": "Summarize the applicants for job 3"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("ask = %d %s", rec.Code, rec.Body)
	}
	tid := rec.Header().Get("X-Trace-Id")

	// /events with a since-cursor shows this ask's window.
	rec, out = do(t, s, "GET", "/events?since="+strconvU(evHead), "")
	if rec.Code != http.StatusOK {
		t.Fatalf("/events = %d %s", rec.Code, rec.Body)
	}
	if head, _ := out["head"].(float64); uint64(head) <= evHead {
		t.Fatalf("/events head = %v, want > %d", out["head"], evHead)
	}
	// Bad params are rejected.
	for _, q := range []string{"?since=abc", "?level=loud", "?limit=-2"} {
		if rec, _ := do(t, s, "GET", "/events"+q, ""); rec.Code != http.StatusBadRequest {
			t.Fatalf("/events%s = %d, want 400", q, rec.Code)
		}
	}

	// /slow lists the captured exemplar; /slow/{id} and /slow/latest return
	// the full evidence.
	rec, out = do(t, s, "GET", "/slow", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("/slow = %d", rec.Code)
	}
	exs, _ := out["exemplars"].([]any)
	if len(exs) == 0 {
		t.Fatalf("/slow empty after a slow ask: %v", out)
	}
	first := exs[0].(map[string]any)
	exID := strconvU(uint64(first["id"].(float64)))
	rec, out = do(t, s, "GET", "/slow/"+exID, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("/slow/%s = %d %s", exID, rec.Code, rec.Body)
	}
	if out["trace"] != tid {
		t.Fatalf("exemplar trace = %v, want %q", out["trace"], tid)
	}
	if spans, _ := out["spans"].([]any); len(spans) < 4 {
		t.Fatalf("exemplar spans = %d, want >= 4 (full tree)", len(spans))
	}
	rec, latest := do(t, s, "GET", "/slow/latest", "")
	if rec.Code != http.StatusOK || latest["id"] != out["id"] {
		t.Fatalf("/slow/latest = %d %v, want exemplar %v", rec.Code, latest["id"], out["id"])
	}
	if rec, _ := do(t, s, "GET", "/slow/999999", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("/slow/999999 = %d, want 404", rec.Code)
	}
	if rec, _ := do(t, s, "GET", "/slow/nope", ""); rec.Code != http.StatusBadRequest {
		t.Fatalf("/slow/nope = %d, want 400", rec.Code)
	}

	// /slo shows the tenant series with a nonzero burn (1ns target: every
	// ask is slow).
	rec, out = do(t, s, "GET", "/slo", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("/slo = %d", rec.Code)
	}
	series, _ := out["series"].([]any)
	var found bool
	for _, sr := range series {
		m := sr.(map[string]any)
		if m["kind"] == "tenant" && m["name"] == "default" {
			found = true
			if burn, _ := m["fast_burn"].(float64); burn <= 0 {
				t.Fatalf("tenant fast burn = %v, want > 0", m)
			}
		}
	}
	if !found {
		t.Fatalf("/slo missing tenant/default series: %v", out)
	}
}

func strconvU(n uint64) string { return strconv.FormatUint(n, 10) }
