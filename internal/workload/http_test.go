package workload

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestParsePrometheus(t *testing.T) {
	text := `# HELP blueprint_asks_total asks
# TYPE blueprint_asks_total counter
blueprint_asks_total 42
blueprint_ask_seconds_bucket{le="+Inf"} 7
blueprint_slo_burn_rate{kind="tenant",name="free tier",window="fast"} 2.5
with_timestamp 1.5 1712000000
`
	got, err := ParsePrometheus(text)
	if err != nil {
		t.Fatal(err)
	}
	if got["blueprint_asks_total"] != 42 {
		t.Fatalf("asks_total = %v", got["blueprint_asks_total"])
	}
	if got[`blueprint_ask_seconds_bucket{le="+Inf"}`] != 7 {
		t.Fatalf("+Inf bucket = %v", got[`blueprint_ask_seconds_bucket{le="+Inf"}`])
	}
	// A label value containing a space must not split the sample.
	if got[`blueprint_slo_burn_rate{kind="tenant",name="free tier",window="fast"}`] != 2.5 {
		t.Fatalf("burn series = %v (keys %v)", got[`blueprint_slo_burn_rate{kind="tenant",name="free tier",window="fast"}`], got)
	}
	// Trailing timestamps are dropped.
	if got["with_timestamp"] != 1.5 {
		t.Fatalf("timestamped sample = %v", got["with_timestamp"])
	}

	if _, err := ParsePrometheus("no_value_here\n"); err == nil {
		t.Fatal("sample line without a value must error")
	}
	if _, err := ParsePrometheus("bad_value abc\n"); err == nil {
		t.Fatal("non-numeric value must error")
	}
	if v, err := ParsePrometheus(`nan_series NaN` + "\n"); err != nil {
		t.Fatal(err)
	} else if !math.IsNaN(v["nan_series"]) {
		t.Fatalf("NaN sample = %v", v["nan_series"])
	}
}

// TestHTTPDriverAgainstStub exercises the driver against a stubbed daemon:
// session creation, a fresh answer, a shed with Retry-After, and a
// degraded answer, all through real request/response cycles.
func TestHTTPDriverAgainstStub(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sessions", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusCreated)
		json.NewEncoder(w).Encode(map[string]string{"id": "session:abc"})
	})
	mux.HandleFunc("POST /sessions/abc/ask", func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("X-Tenant") != "pro" {
			t.Errorf("X-Tenant = %q, want pro", r.Header.Get("X-Tenant"))
		}
		var body struct {
			Text      string `json:"text"`
			TimeoutMS int    `json:"timeout_ms"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			t.Errorf("ask body: %v", err)
		}
		w.Header().Set("X-Trace-Id", "session:abc-1")
		switch body.Text {
		case "shed me":
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]any{
				"error": "overloaded", "retry_after_ms": 2000,
			})
		case "stale ok":
			json.NewEncoder(w).Encode(map[string]any{
				"answer": "old news", "degraded": true, "stale_for_ms": 1500,
			})
		default:
			json.NewEncoder(w).Encode(map[string]any{"answer": "42 jobs"})
		}
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	d := NewHTTPDriver(srv.URL + "/")
	id, err := d.CreateSession()
	if err != nil {
		t.Fatal(err)
	}
	if id != "session:abc" {
		t.Fatalf("session id = %q", id)
	}

	res, err := d.Ask(id, "pro", "how many jobs?", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() || res.Answer != "42 jobs" || res.TraceID != "session:abc-1" {
		t.Fatalf("fresh ask = %+v", res)
	}

	res, err = d.Ask(id, "pro", "shed me", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Shed() || res.RetryAfter != 2*time.Second || res.Err != "overloaded" {
		t.Fatalf("shed ask = %+v", res)
	}
	if res.OK() {
		t.Fatal("shed result reports OK")
	}

	res, err = d.Ask(id, "pro", "stale ok", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.StaleFor != 1500*time.Millisecond || res.OK() {
		t.Fatalf("degraded ask = %+v", res)
	}
}
