package coordinator

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"blueprint/internal/agent"
	"blueprint/internal/budget"
	"blueprint/internal/llm"
	"blueprint/internal/planner"
	"blueprint/internal/registry"
	"blueprint/internal/streams"
)

const sess = "session:coord"

// env wires a store, registry and the three Fig. 6 agents (PROFILER,
// JOBMATCHER, PRESENTER) implemented as simple processors.
type env struct {
	store *streams.Store
	reg   *registry.AgentRegistry
	tp    *planner.TaskPlanner
	model *llm.Model
	insts []*agent.Instance
}

func newEnv(t testing.TB) *env {
	t.Helper()
	store := streams.NewStore()
	t.Cleanup(func() { store.Close() })
	reg := registry.NewAgentRegistry()
	model := llm.New(llm.Config{Name: "coord-llm", Accuracy: 1.0, CostPer1K: 0.001, Seed: 9}, nil)

	e := &env{store: store, reg: reg, model: model}
	t.Cleanup(func() {
		for _, in := range e.insts {
			in.Stop()
		}
	})

	add := func(spec registry.AgentSpec, proc agent.Processor) {
		if err := reg.Register(spec); err != nil {
			t.Fatal(err)
		}
		inst, err := agent.Attach(store, sess, agent.New(spec, proc), agent.Options{DisableListen: true})
		if err != nil {
			t.Fatal(err)
		}
		e.insts = append(e.insts, inst)
	}

	add(registry.AgentSpec{
		Name:        "PROFILER",
		Description: "collect job seeker profile information from the user via a profile form",
		Inputs:      []registry.ParamSpec{{Name: "CRITERIA", Type: "text"}},
		Outputs:     []registry.ParamSpec{{Name: "JOBSEEKER_DATA", Type: "profile"}},
		QoS:         registry.QoSProfile{CostPerCall: 0.001, Latency: 5 * time.Millisecond, Accuracy: 0.95},
	}, func(ctx context.Context, inv agent.Invocation) (agent.Outputs, error) {
		criteria, _ := inv.Inputs["CRITERIA"].(string)
		return agent.Outputs{Values: map[string]any{
			"JOBSEEKER_DATA": map[string]any{"criteria": criteria, "skills": []any{"python", "sql"}},
		}}, nil
	})

	add(registry.AgentSpec{
		Name:        "JOBMATCHER",
		Description: "match the job seeker profile with available job listings ranking match quality",
		Inputs:      []registry.ParamSpec{{Name: "JOBSEEKER_DATA", Type: "profile"}},
		Outputs:     []registry.ParamSpec{{Name: "MATCHES", Type: "rows"}},
		QoS:         registry.QoSProfile{CostPerCall: 0.01, Latency: 20 * time.Millisecond, Accuracy: 0.9},
	}, func(ctx context.Context, inv agent.Invocation) (agent.Outputs, error) {
		profile, _ := inv.Inputs["JOBSEEKER_DATA"].(map[string]any)
		criteria, _ := profile["criteria"].(string)
		return agent.Outputs{Values: map[string]any{
			"MATCHES": []any{
				map[string]any{"job": "Data Scientist @ Acme", "criteria": criteria, "score": 0.92},
				map[string]any{"job": "ML Engineer @ DataWorks", "criteria": criteria, "score": 0.81},
			},
		}}, nil
	})

	add(registry.AgentSpec{
		Name:        "PRESENTER",
		Description: "present the matched jobs to the end user rendering results",
		Inputs:      []registry.ParamSpec{{Name: "MATCHES", Type: "rows"}},
		Outputs:     []registry.ParamSpec{{Name: "RENDERED", Type: "text"}},
		QoS:         registry.QoSProfile{CostPerCall: 0.0005, Latency: 2 * time.Millisecond, Accuracy: 1.0},
	}, func(ctx context.Context, inv agent.Invocation) (agent.Outputs, error) {
		matches, _ := inv.Inputs["MATCHES"].([]any)
		var b strings.Builder
		for i, m := range matches {
			mm, _ := m.(map[string]any)
			fmt.Fprintf(&b, "%d. %v\n", i+1, mm["job"])
		}
		return agent.Outputs{
			Values:  map[string]any{"RENDERED": b.String()},
			Display: b.String(),
		}, nil
	})

	e.tp = planner.New(reg, model, nil)
	return e
}

func TestExecuteFig6PlanEndToEnd(t *testing.T) {
	e := newEnv(t)
	c := New(e.store, e.reg, e.tp, e.model, Options{})
	plan, err := e.tp.Plan("I am looking for a data scientist position in SF bay area.")
	if err != nil {
		t.Fatal(err)
	}
	b := budget.New(budget.Limits{MaxCost: 1.0})
	res, err := c.ExecutePlan(sess, plan, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 3 || res.Aborted {
		t.Fatalf("result = %+v", res)
	}
	rendered, _ := res.Final["RENDERED"].(string)
	if !strings.Contains(rendered, "Data Scientist @ Acme") {
		t.Fatalf("rendered = %q", rendered)
	}
	// The criteria transform stripped the conversational filler before it
	// reached the PROFILER (PROFILER.CRITERIA <- USER.TEXT).
	s1 := res.Steps[0]
	profile, _ := s1.Outputs["JOBSEEKER_DATA"].(map[string]any)
	if got := profile["criteria"]; got != "data scientist position in SF bay area" {
		t.Fatalf("criteria = %q", got)
	}
	// Budget charged per step (3 steps + 1 transform).
	if res.Budget.Charges != 4 {
		t.Fatalf("charges = %d", res.Budget.Charges)
	}
	if res.Budget.CostSpent <= 0 {
		t.Fatalf("cost = %v", res.Budget.CostSpent)
	}
}

func TestBudgetAbortsMidPlan(t *testing.T) {
	e := newEnv(t)
	c := New(e.store, e.reg, e.tp, e.model, Options{})
	plan, err := e.tp.Plan("I am looking for a data scientist position.")
	if err != nil {
		t.Fatal(err)
	}
	// Enough for step 1 (+transform) but not step 2 actuals.
	b := budget.New(budget.Limits{MaxCost: 0.002})
	abortSub := e.store.Subscribe(streams.Filter{
		Streams: []string{agent.ControlStream(sess)},
		Kinds:   []streams.Kind{streams.Control},
	}, false)
	defer abortSub.Cancel()

	// Pre-projection would catch this; test mid-plan enforcement by using
	// Confirm policy that accepts the projection but rejects actuals.
	calls := 0
	c.opts.OnViolation = Confirm
	c.opts.ConfirmFunc = func(v []budget.Violation) bool {
		calls++
		return v == nil // accept projection warning, reject actual violations
	}
	res, err := c.ExecutePlan(sess, plan, b)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v", err)
	}
	if !res.Aborted || res.AbortReason == "" {
		t.Fatalf("result = %+v", res)
	}
	if calls < 1 {
		t.Fatal("confirm not consulted")
	}
	// ABORT control message observable on the stream.
	select {
	case msg := <-abortSub.C():
		for msg.Directive == nil || msg.Directive.Op != streams.OpAbort {
			msg = <-abortSub.C()
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no ABORT message")
	}
}

func TestProjectionAbortBeforeExecution(t *testing.T) {
	e := newEnv(t)
	c := New(e.store, e.reg, e.tp, e.model, Options{})
	plan, _ := e.tp.Plan("I am looking for a data scientist position.")
	b := budget.New(budget.Limits{MaxCost: 0.0001}) // below projected total
	res, err := c.ExecutePlan(sess, plan, b)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v", err)
	}
	if len(res.Steps) != 0 {
		t.Fatalf("steps ran despite projection abort: %+v", res.Steps)
	}
}

func TestConfirmPolicyContinues(t *testing.T) {
	e := newEnv(t)
	calls := 0
	c := New(e.store, e.reg, e.tp, e.model, Options{
		OnViolation: Confirm,
		ConfirmFunc: func(v []budget.Violation) bool { calls++; return true },
	})
	plan, _ := e.tp.Plan("I am looking for a data scientist position.")
	b := budget.New(budget.Limits{MaxCost: 0.0001})
	res, err := c.ExecutePlan(sess, plan, b)
	if err != nil {
		t.Fatalf("confirmed execution failed: %v", err)
	}
	if res.Aborted || len(res.Steps) != 3 {
		t.Fatalf("result = %+v", res)
	}
	if len(res.Budget.Violations) == 0 {
		t.Fatal("violations not recorded")
	}
	// One prompt for the plan projection plus at most one per step: a step
	// confirmed at admission is not re-prompted when its actuals commit.
	if calls != 4 {
		t.Fatalf("confirm prompts = %d, want 4 (projection + one per step)", calls)
	}
}

func TestRetryOnErrorReplans(t *testing.T) {
	e := newEnv(t)
	// A failing matcher registered more prominently, plus the working one.
	spec := registry.AgentSpec{
		Name:        "FLAKY_MATCHER",
		Description: "match the job seeker profile with available job listings ranking match quality precisely",
		Inputs:      []registry.ParamSpec{{Name: "JOBSEEKER_DATA", Type: "profile"}},
		Outputs:     []registry.ParamSpec{{Name: "MATCHES", Type: "rows"}},
	}
	if err := e.reg.Register(spec); err != nil {
		t.Fatal(err)
	}
	inst, err := agent.Attach(e.store, sess, agent.New(spec, func(ctx context.Context, inv agent.Invocation) (agent.Outputs, error) {
		return agent.Outputs{}, errors.New("model unavailable")
	}), agent.Options{DisableListen: true})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Stop()

	c := New(e.store, e.reg, e.tp, e.model, Options{RetryOnError: true})
	// Hand-build a plan whose matcher step uses the flaky agent.
	plan := &planner.Plan{
		ID: "manual-1", Utterance: "match me", Intent: "rank",
		Steps: []planner.Step{
			{ID: "s1", Agent: "PROFILER", Task: "collect job seeker profile information from the user",
				Bindings: map[string]planner.Binding{"CRITERIA": {FromUserText: true}}},
			{ID: "s2", Agent: "FLAKY_MATCHER", Task: "match the job seeker profile with available job listings",
				Bindings: map[string]planner.Binding{"JOBSEEKER_DATA": {FromStep: "s1", FromParam: "JOBSEEKER_DATA"}}},
		},
	}
	res, err := c.ExecutePlan(sess, plan, budget.New(budget.Limits{}))
	if err != nil {
		t.Fatalf("replan retry failed: %v (res=%+v)", err, res)
	}
	if res.Replans != 1 {
		t.Fatalf("replans = %d", res.Replans)
	}
	if res.Steps[len(res.Steps)-1].Agent == "FLAKY_MATCHER" {
		t.Fatal("retry kept flaky agent")
	}
}

// A replan retry must be re-admitted through the budget: when the
// alternative agent's projected cost no longer fits, the plan aborts before
// the retry executes instead of overshooting post-hoc.
func TestReplanRetryReadmitsThroughBudget(t *testing.T) {
	e := newEnv(t)
	spec := registry.AgentSpec{
		Name:        "FLAKY_MATCHER",
		Description: "match the job seeker profile with available job listings ranking match quality precisely",
		Inputs:      []registry.ParamSpec{{Name: "JOBSEEKER_DATA", Type: "profile"}},
		Outputs:     []registry.ParamSpec{{Name: "MATCHES", Type: "rows"}},
	}
	if err := e.reg.Register(spec); err != nil {
		t.Fatal(err)
	}
	inst, err := agent.Attach(e.store, sess, agent.New(spec, func(ctx context.Context, inv agent.Invocation) (agent.Outputs, error) {
		return agent.Outputs{}, errors.New("model unavailable")
	}), agent.Options{DisableListen: true})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Stop()

	c := New(e.store, e.reg, e.tp, e.model, Options{RetryOnError: true})
	plan := &planner.Plan{
		ID: "manual-4", Utterance: "match me", Intent: "rank",
		Steps: []planner.Step{
			{ID: "s1", Agent: "PROFILER", Task: "collect job seeker profile information from the user",
				Bindings: map[string]planner.Binding{"CRITERIA": {FromUserText: true}}},
			{ID: "s2", Agent: "FLAKY_MATCHER", Task: "match the job seeker profile with available job listings",
				Bindings: map[string]planner.Binding{"JOBSEEKER_DATA": {FromStep: "s1", FromParam: "JOBSEEKER_DATA"}}},
		},
	}
	// Fits PROFILER ($0.001) and the zero-QoS flaky agent, but not the
	// $0.01 JOBMATCHER the replan would substitute.
	b := budget.New(budget.Limits{MaxCost: 0.0015})
	res, err := c.ExecutePlan(sess, plan, b)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v (res=%+v)", err, res)
	}
	if got := res.Budget.CostSpent; got > 0.0015 {
		t.Fatalf("replan retry overshot the budget: spent $%.4f", got)
	}
}

func TestStepFailureWithoutRetry(t *testing.T) {
	e := newEnv(t)
	c := New(e.store, e.reg, e.tp, e.model, Options{})
	plan := &planner.Plan{
		ID: "manual-2", Utterance: "x", Intent: "rank",
		Steps: []planner.Step{{ID: "s1", Agent: "NO_SUCH_AGENT", Task: "anything"}},
	}
	c.opts.StepTimeout = 300 * time.Millisecond
	_, err := c.ExecutePlan(sess, plan, budget.New(budget.Limits{}))
	if !errors.Is(err, ErrStepFailed) && !errors.Is(err, ErrStepTimeout) {
		t.Fatalf("err = %v", err)
	}
}

func TestUnresolvableBinding(t *testing.T) {
	e := newEnv(t)
	c := New(e.store, e.reg, e.tp, e.model, Options{})
	plan := &planner.Plan{
		ID: "manual-3", Utterance: "x", Intent: "rank",
		Steps: []planner.Step{
			{ID: "s1", Agent: "PRESENTER", Task: "present",
				Bindings: map[string]planner.Binding{"MATCHES": {FromStep: "s0", FromParam: "MATCHES"}}},
		},
	}
	if err := plan.Validate(); err == nil {
		t.Fatal("plan with forward dep validated")
	}
	_, err := c.ExecutePlan(sess, plan, budget.New(budget.Limits{}))
	if err == nil {
		t.Fatal("executed invalid plan")
	}
}

// fanEnv attaches n independent equal-latency agents (FAN_1..FAN_n) to the
// session plus a JOIN agent consuming all their outputs, and returns a
// tracker of the maximum number of agents in flight at once.
type fanEnv struct {
	*env
	inFlight    atomic.Int64
	maxInFlight atomic.Int64
}

func newFanEnv(t testing.TB, n int, stepLatency time.Duration) *fanEnv {
	fe := &fanEnv{env: newEnv(t)}
	fe.register(t, n, stepLatency)
	fe.attach(t, sess, n, stepLatency)
	return fe
}

// register adds the FAN_1..FAN_n and JOIN specs to the registry.
func (fe *fanEnv) register(t testing.TB, n int, stepLatency time.Duration) {
	for i := 1; i <= n; i++ {
		spec := registry.AgentSpec{
			Name:        fmt.Sprintf("FAN_%d", i),
			Description: fmt.Sprintf("independent fan-out worker %d", i),
			Inputs:      []registry.ParamSpec{{Name: "CRITERIA", Type: "text"}},
			Outputs:     []registry.ParamSpec{{Name: "OUT", Type: "text"}},
			QoS:         registry.QoSProfile{CostPerCall: 0.001, Latency: stepLatency, Accuracy: 1.0},
		}
		if err := fe.reg.Register(spec); err != nil {
			t.Fatal(err)
		}
	}
	join := registry.AgentSpec{
		Name:        "JOIN",
		Description: "joins the fan-out outputs",
		Outputs:     []registry.ParamSpec{{Name: "JOINED", Type: "text"}},
	}
	for i := 1; i <= n; i++ {
		join.Inputs = append(join.Inputs, registry.ParamSpec{Name: fmt.Sprintf("IN_%d", i), Type: "text"})
	}
	if err := fe.reg.Register(join); err != nil {
		t.Fatal(err)
	}
}

// attach starts the fan and join agent instances in the given session.
func (fe *fanEnv) attach(t testing.TB, session string, n int, stepLatency time.Duration) {
	track := func() func() {
		cur := fe.inFlight.Add(1)
		for {
			max := fe.maxInFlight.Load()
			if cur <= max || fe.maxInFlight.CompareAndSwap(max, cur) {
				break
			}
		}
		return func() { fe.inFlight.Add(-1) }
	}
	for i := 1; i <= n; i++ {
		spec, err := fe.reg.Get(fmt.Sprintf("FAN_%d", i))
		if err != nil {
			t.Fatal(err)
		}
		inst, err := agent.Attach(fe.store, session, agent.New(spec, func(ctx context.Context, inv agent.Invocation) (agent.Outputs, error) {
			defer track()()
			select {
			case <-time.After(stepLatency):
			case <-ctx.Done():
				return agent.Outputs{}, ctx.Err()
			}
			return agent.Outputs{Values: map[string]any{"OUT": "done"}}, nil
		}), agent.Options{DisableListen: true, Workers: n})
		if err != nil {
			t.Fatal(err)
		}
		fe.insts = append(fe.insts, inst)
	}
	join, err := fe.reg.Get("JOIN")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := agent.Attach(fe.store, session, agent.New(join, func(ctx context.Context, inv agent.Invocation) (agent.Outputs, error) {
		return agent.Outputs{Values: map[string]any{"JOINED": fmt.Sprintf("%d inputs", len(inv.Inputs))}}, nil
	}), agent.Options{DisableListen: true})
	if err != nil {
		t.Fatal(err)
	}
	fe.insts = append(fe.insts, inst)
}

// fanOutPlan builds s1..sn independent steps plus a join step depending on
// all of them.
func fanOutPlan(n int) *planner.Plan {
	p := &planner.Plan{ID: "fan", Utterance: "fan out", Intent: "rank"}
	joinBindings := map[string]planner.Binding{}
	for i := 1; i <= n; i++ {
		id := fmt.Sprintf("s%d", i)
		p.Steps = append(p.Steps, planner.Step{
			ID: id, Agent: fmt.Sprintf("FAN_%d", i), Task: "fan out",
			Bindings: map[string]planner.Binding{"CRITERIA": {FromUserText: true}},
		})
		joinBindings[fmt.Sprintf("IN_%d", i)] = planner.Binding{FromStep: id, FromParam: "OUT"}
	}
	p.Steps = append(p.Steps, planner.Step{
		ID: "join", Agent: "JOIN", Task: "join", Bindings: joinBindings,
	})
	return p
}

// A fan-out plan's independent steps must run concurrently (one wave), and
// the merged outputs must all reach the join step. Run under -race: this is
// the scheduler's concurrency soak test.
func TestConcurrentFanOutExecutesInParallel(t *testing.T) {
	const n = 4
	fe := newFanEnv(t, n, 40*time.Millisecond)
	c := New(fe.store, fe.reg, fe.tp, fe.model, Options{})
	plan := fanOutPlan(n)

	start := time.Now()
	res, err := c.ExecutePlan(sess, plan, budget.New(budget.Limits{}))
	wall := time.Since(start)
	if err != nil {
		t.Fatalf("fan-out failed: %v (res=%+v)", err, res)
	}
	if len(res.Steps) != n+1 {
		t.Fatalf("steps = %d, want %d", len(res.Steps), n+1)
	}
	// Steps reported in plan order with the join last, fed by all n outputs.
	if res.Steps[n].StepID != "join" {
		t.Fatalf("step order = %+v", res.Steps)
	}
	if joined, _ := res.Final["JOINED"]; joined != fmt.Sprintf("%d inputs", n) {
		t.Fatalf("join saw %v", joined)
	}
	if max := fe.maxInFlight.Load(); max < 2 {
		t.Fatalf("max in-flight = %d, want >= 2 (steps serialized)", max)
	}
	// ~1 wave of fan-out + join (~2x step latency), not n sequential waves.
	// The bound of 3/4 of the sequential floor is generous for slow CI
	// machines while still failing if most of the fan-out serializes.
	if bound := time.Duration(n) * 40 * time.Millisecond * 3 / 4; wall >= bound {
		t.Fatalf("wall-clock %v not under concurrency bound %v", wall, bound)
	}
	if res.Budget.Charges != n+1 {
		t.Fatalf("charges = %d, want %d", res.Budget.Charges, n+1)
	}
}

// A parallel plan admitted by the critical-path projection must not be
// aborted mid-flight by latency accounting: 4 concurrent 40ms steps under a
// 150ms limit overlap on the critical path (~40ms + join), so neither the
// per-step admission nor the commits may trip the latency limit the way a
// sum-of-step-latencies (160ms) would.
func TestParallelPlanFitsLatencyBudget(t *testing.T) {
	const n = 4
	fe := newFanEnv(t, n, 40*time.Millisecond)
	c := New(fe.store, fe.reg, fe.tp, fe.model, Options{})
	b := budget.New(budget.Limits{MaxLatency: 150 * time.Millisecond})
	res, err := c.ExecutePlan(sess, fanOutPlan(n), b)
	if err != nil {
		t.Fatalf("latency-budgeted fan-out aborted: %v (res=%+v)", err, res)
	}
	if res.Aborted || len(res.Steps) != n+1 {
		t.Fatalf("result = %+v", res)
	}
	// The budget's latency dimension tracked the critical path over the
	// steps' actual latencies, not their 160ms sum.
	if lat := res.Budget.Latency; lat >= 160*time.Millisecond {
		t.Fatalf("charged latency %v looks like a sum of steps, not a critical path", lat)
	}
}

// MaxParallel: 1 must serialize the same plan.
func TestMaxParallelOneSerializes(t *testing.T) {
	const n = 3
	fe := newFanEnv(t, n, 20*time.Millisecond)
	c := New(fe.store, fe.reg, fe.tp, fe.model, Options{MaxParallel: 1})
	res, err := c.ExecutePlan(sess, fanOutPlan(n), budget.New(budget.Limits{}))
	if err != nil {
		t.Fatalf("sequential fan-out failed: %v (res=%+v)", err, res)
	}
	if max := fe.maxInFlight.Load(); max != 1 {
		t.Fatalf("max in-flight = %d under MaxParallel=1", max)
	}
}

// A failure in one step must cancel the coordinator's wait on the other
// in-flight steps via the shared context instead of letting the plan run on
// to the step timeout.
func TestFailureCancelsInFlightSteps(t *testing.T) {
	e := newEnv(t)
	started := make(chan struct{}, 2)
	release := make(chan struct{})
	add := func(name string, fail bool) {
		spec := registry.AgentSpec{
			Name:        name,
			Description: name + " concurrent step",
			Inputs:      []registry.ParamSpec{{Name: "CRITERIA", Type: "text"}},
			Outputs:     []registry.ParamSpec{{Name: "OUT", Type: "text"}},
			QoS:         registry.QoSProfile{CostPerCall: 0.001, Accuracy: 1.0},
		}
		if err := e.reg.Register(spec); err != nil {
			t.Fatal(err)
		}
		inst, err := agent.Attach(e.store, sess, agent.New(spec, func(ctx context.Context, inv agent.Invocation) (agent.Outputs, error) {
			started <- struct{}{}
			if fail {
				<-release
				return agent.Outputs{}, errors.New("boom")
			}
			<-ctx.Done() // sleeper: only the agent-side timeout wakes it
			return agent.Outputs{}, ctx.Err()
		}), agent.Options{DisableListen: true, Timeout: 500 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		e.insts = append(e.insts, inst)
	}
	add("FAILER", true)
	add("SLEEPER", false)

	// StepTimeout of 10s: if cancellation did not work, the plan would hang
	// on the sleeper for the full step timeout.
	c := New(e.store, e.reg, e.tp, e.model, Options{StepTimeout: 10 * time.Second})
	plan := &planner.Plan{
		ID: "abort-fan", Utterance: "x", Intent: "rank",
		Steps: []planner.Step{
			{ID: "s1", Agent: "FAILER", Task: "fail",
				Bindings: map[string]planner.Binding{"CRITERIA": {FromUserText: true}}},
			{ID: "s2", Agent: "SLEEPER", Task: "sleep",
				Bindings: map[string]planner.Binding{"CRITERIA": {FromUserText: true}}},
		},
	}
	go func() {
		// Let both steps start before the failure fires.
		<-started
		<-started
		close(release)
	}()
	start := time.Now()
	res, err := c.ExecutePlan(sess, plan, budget.New(budget.Limits{}))
	if !errors.Is(err, ErrStepFailed) {
		t.Fatalf("err = %v", err)
	}
	if wall := time.Since(start); wall > 5*time.Second {
		t.Fatalf("failure did not cancel the in-flight sleeper (took %v)", wall)
	}
	// The cancelled sleeper is reported as collateral, not as the cause.
	for _, sr := range res.Steps {
		if sr.StepID == "s2" && sr.Err != "cancelled" {
			t.Fatalf("sleeper result = %+v", sr)
		}
	}
}

func TestServiceExecutesEmittedPlans(t *testing.T) {
	e := newEnv(t)
	c := New(e.store, e.reg, e.tp, e.model, Options{})
	svc := c.Serve(sess, budget.Limits{MaxCost: 1.0})
	defer svc.Stop()

	plan, err := e.tp.Plan("I am looking for a data scientist position in SF bay area.")
	if err != nil {
		t.Fatal(err)
	}
	if err := planner.EmitPlan(e.store, sess, plan); err != nil {
		t.Fatal(err)
	}
	// Event-driven completion: the service announces each finished plan on
	// ResultC, so no sleep-polling of Results is needed.
	select {
	case res := <-svc.ResultC():
		if res.Aborted {
			t.Fatalf("service result aborted: %+v", res)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("service never executed the plan")
	}
	if rs := svc.Results(); len(rs) != 1 {
		t.Fatalf("results = %d, want 1", len(rs))
	}
	// Final outputs surfaced on the display stream.
	msgs, err := e.store.ReadAll(agent.DisplayStream(sess))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range msgs {
		if m.Sender == "coordinator" && m.HasTag("result") {
			found = true
		}
	}
	if !found {
		t.Fatal("no coordinator result on display stream")
	}
}
