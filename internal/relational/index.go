package relational

import "sort"

// orderedIndex keeps (value, rowid) entries sorted by value then rowid,
// supporting equality and range scans. A sorted slice with binary search is
// the right structure at the scale of this engine (inserts are amortized by
// batch loading; the workload generator bulk-inserts before querying).
type orderedIndex struct {
	entries []orderedEntry
}

type orderedEntry struct {
	v  Value
	id int
}

func newOrderedIndex() *orderedIndex {
	return &orderedIndex{}
}

func (ix *orderedIndex) less(a, b orderedEntry) bool {
	c := Compare(a.v, b.v)
	if c != 0 {
		return c < 0
	}
	return a.id < b.id
}

func (ix *orderedIndex) add(v Value, id int) {
	e := orderedEntry{v: v, id: id}
	pos := sort.Search(len(ix.entries), func(i int) bool {
		return !ix.less(ix.entries[i], e)
	})
	ix.entries = append(ix.entries, orderedEntry{})
	copy(ix.entries[pos+1:], ix.entries[pos:])
	ix.entries[pos] = e
}

func (ix *orderedIndex) remove(v Value, id int) {
	e := orderedEntry{v: v, id: id}
	pos := sort.Search(len(ix.entries), func(i int) bool {
		return !ix.less(ix.entries[i], e)
	})
	if pos < len(ix.entries) && ix.entries[pos].id == id && Compare(ix.entries[pos].v, v) == 0 {
		ix.entries = append(ix.entries[:pos], ix.entries[pos+1:]...)
	}
}

// lookupEq returns rowids whose value equals v.
func (ix *orderedIndex) lookupEq(v Value) []int {
	lo := sort.Search(len(ix.entries), func(i int) bool {
		return Compare(ix.entries[i].v, v) >= 0
	})
	var out []int
	for i := lo; i < len(ix.entries) && Compare(ix.entries[i].v, v) == 0; i++ {
		out = append(out, ix.entries[i].id)
	}
	return out
}

// lookupRange returns rowids with lo <= value <= hi; either bound may be
// Null meaning unbounded, and loOpen/hiOpen make the bound exclusive.
func (ix *orderedIndex) lookupRange(lo, hi Value, loOpen, hiOpen bool) []int {
	start := 0
	if !lo.IsNull() {
		start = sort.Search(len(ix.entries), func(i int) bool {
			c := Compare(ix.entries[i].v, lo)
			if loOpen {
				return c > 0
			}
			return c >= 0
		})
	}
	var out []int
	for i := start; i < len(ix.entries); i++ {
		if !hi.IsNull() {
			c := Compare(ix.entries[i].v, hi)
			if c > 0 || (hiOpen && c == 0) {
				break
			}
		}
		out = append(out, ix.entries[i].id)
	}
	return out
}
