package coordinator

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"blueprint/internal/agent"
	"blueprint/internal/budget"
	"blueprint/internal/memo"
	"blueprint/internal/planner"
	"blueprint/internal/registry"
	"blueprint/internal/streams"
)

// memoEnv wires a store, a registry with two cacheable agents (FETCH reads
// the "catalog" source, DERIVE is pure), per-agent execution counters, and
// a shared memo store.
type memoEnv struct {
	store *streams.Store
	reg   *registry.AgentRegistry
	m     *memo.Store
	execs map[string]*atomic.Int32
	insts []*agent.Instance
}

func newMemoEnv(t testing.TB, fetchLatency time.Duration) *memoEnv {
	t.Helper()
	e := &memoEnv{
		store: streams.NewStore(),
		reg:   registry.NewAgentRegistry(),
		m:     memo.New(64),
		execs: map[string]*atomic.Int32{"FETCH": {}, "DERIVE": {}},
	}
	t.Cleanup(func() {
		for _, in := range e.insts {
			in.Stop()
		}
		e.store.Close()
	})
	for _, spec := range []registry.AgentSpec{
		{
			Name: "FETCH", Description: "fetch catalog rows for a query",
			Cacheable: true, Reads: []string{"catalog"},
			Inputs:  []registry.ParamSpec{{Name: "Q", Type: "text"}},
			Outputs: []registry.ParamSpec{{Name: "OUT", Type: "text"}},
			QoS:     registry.QoSProfile{CostPerCall: 0.01, Latency: fetchLatency, Accuracy: 0.9},
		},
		{
			Name: "DERIVE", Description: "derive a rendering from fetched rows",
			Cacheable: true,
			Inputs:    []registry.ParamSpec{{Name: "IN", Type: "text"}},
			Outputs:   []registry.ParamSpec{{Name: "OUT", Type: "text"}},
			QoS:       registry.QoSProfile{CostPerCall: 0.005, Latency: time.Millisecond, Accuracy: 0.95},
		},
	} {
		if err := e.reg.Register(spec); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

// attach starts FETCH and DERIVE instances in the session.
func (e *memoEnv) attach(t testing.TB, session string, fetchLatency time.Duration) {
	t.Helper()
	add := func(name string, proc agent.Processor) {
		spec, err := e.reg.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := agent.Attach(e.store, session, agent.New(spec, proc), agent.Options{DisableListen: true})
		if err != nil {
			t.Fatal(err)
		}
		e.insts = append(e.insts, inst)
	}
	add("FETCH", func(ctx context.Context, inv agent.Invocation) (agent.Outputs, error) {
		e.execs["FETCH"].Add(1)
		select {
		case <-time.After(fetchLatency):
		case <-ctx.Done():
			return agent.Outputs{}, ctx.Err()
		}
		q, _ := inv.Inputs["Q"].(string)
		return agent.Outputs{Values: map[string]any{"OUT": "rows for " + q}}, nil
	})
	add("DERIVE", func(ctx context.Context, inv agent.Invocation) (agent.Outputs, error) {
		e.execs["DERIVE"].Add(1)
		in, _ := inv.Inputs["IN"].(string)
		return agent.Outputs{Values: map[string]any{"OUT": "derived: " + in}}, nil
	})
}

// chainPlan is s1:FETCH(Q <- USER.TEXT) -> s2:DERIVE(IN <- s1.OUT).
func chainPlan(id string) *planner.Plan {
	return &planner.Plan{
		ID: id, Utterance: "the repeated ask", Intent: "open_query",
		Steps: []planner.Step{
			{ID: "s1", Agent: "FETCH", Task: "fetch",
				Bindings: map[string]planner.Binding{"Q": {FromUserText: true}}},
			{ID: "s2", Agent: "DERIVE", Task: "derive",
				Bindings: map[string]planner.Binding{"IN": {FromStep: "s1", FromParam: "OUT"}}},
		},
	}
}

func TestMemoWarmPlanSkipsExecution(t *testing.T) {
	e := newMemoEnv(t, 5*time.Millisecond)
	e.attach(t, "session:memo", 5*time.Millisecond)
	c := New(e.store, e.reg, nil, nil, Options{Memo: e.m})

	res1, err := c.ExecutePlan("session:memo", chainPlan("p1"), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, sr := range res1.Steps {
		if sr.Cached {
			t.Fatalf("cold step %s reported cached", sr.StepID)
		}
	}
	if got := e.execs["FETCH"].Load() + e.execs["DERIVE"].Load(); got != 2 {
		t.Fatalf("cold executions = %d", got)
	}

	res2, err := c.ExecutePlan("session:memo", chainPlan("p2"), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, sr := range res2.Steps {
		if !sr.Cached || sr.Cost != 0 || sr.Latency != 0 {
			t.Fatalf("warm step %+v not served from memo", sr)
		}
	}
	if res2.Final["OUT"] != "derived: rows for the repeated ask" {
		t.Fatalf("warm final = %v", res2.Final)
	}
	if got := e.execs["FETCH"].Load() + e.execs["DERIVE"].Load(); got != 2 {
		t.Fatalf("warm run re-executed: %d executions", got)
	}
	if res2.Budget.CostSpent != 0 || res2.Budget.MemoHits != 2 {
		t.Fatalf("warm budget = %+v", res2.Budget)
	}
	st := e.m.Stats()
	if st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestMemoDedupAcrossConcurrentSessions is the cross-session single-flight
// guarantee: N sessions executing the identical plan concurrently through
// one Coordinator run each step exactly once.
func TestMemoDedupAcrossConcurrentSessions(t *testing.T) {
	const sessions = 4
	e := newMemoEnv(t, 30*time.Millisecond)
	ids := make([]string, sessions)
	for i := range ids {
		ids[i] = fmt.Sprintf("session:memo-%d", i)
		e.attach(t, ids[i], 30*time.Millisecond)
	}
	c := New(e.store, e.reg, nil, nil, Options{Memo: e.m})

	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i, id := range ids {
		wg.Add(1)
		go func(i int, session string) {
			defer wg.Done()
			res, err := c.ExecutePlan(session, chainPlan(fmt.Sprintf("p%d", i)), nil)
			if err != nil {
				errs <- err
				return
			}
			if res.Final["OUT"] != "derived: rows for the repeated ask" {
				errs <- fmt.Errorf("session %s final = %v", session, res.Final)
			}
		}(i, id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if f, d := e.execs["FETCH"].Load(), e.execs["DERIVE"].Load(); f != 1 || d != 1 {
		t.Fatalf("executions fetch=%d derive=%d, want 1 each", f, d)
	}
	st := e.m.Stats()
	if st.Coalesced == 0 {
		t.Fatalf("no dedup-coalesced requests: %+v", st)
	}
	// Every non-winning step request was satisfied by coalescing or a hit.
	if st.Coalesced+st.Hits != 2*(sessions-1) {
		t.Fatalf("coalesced=%d hits=%d, want %d combined", st.Coalesced, st.Hits, 2*(sessions-1))
	}
}

func TestMemoSourceInvalidationReexecutesOnlyReaders(t *testing.T) {
	e := newMemoEnv(t, time.Millisecond)
	e.attach(t, "session:memo-inv", time.Millisecond)
	c := New(e.store, e.reg, nil, nil, Options{Memo: e.m})

	if _, err := c.ExecutePlan("session:memo-inv", chainPlan("p1"), nil); err != nil {
		t.Fatal(err)
	}
	// The catalog changes: FETCH's entry drops, DERIVE's survives (it does
	// not read the source, and FETCH recomputes the same rows).
	if n := e.m.InvalidateSource("catalog"); n != 1 {
		t.Fatalf("invalidated %d entries", n)
	}
	if _, err := c.ExecutePlan("session:memo-inv", chainPlan("p2"), nil); err != nil {
		t.Fatal(err)
	}
	if f := e.execs["FETCH"].Load(); f != 2 {
		t.Fatalf("FETCH executions = %d, want re-execution after invalidation", f)
	}
	if d := e.execs["DERIVE"].Load(); d != 1 {
		t.Fatalf("DERIVE executions = %d, want hit on unchanged input", d)
	}
}

func TestMemoRegistryUpdateInvalidatesThroughHook(t *testing.T) {
	e := newMemoEnv(t, time.Millisecond)
	e.attach(t, "session:memo-upd", time.Millisecond)
	e.reg.OnChange(func(name string) { e.m.InvalidateAgent(name) })
	c := New(e.store, e.reg, nil, nil, Options{Memo: e.m})

	if _, err := c.ExecutePlan("session:memo-upd", chainPlan("p1"), nil); err != nil {
		t.Fatal(err)
	}
	if e.m.Len() != 2 {
		t.Fatalf("entries = %d", e.m.Len())
	}

	// An identical re-registration must NOT invalidate (no version bump).
	spec, _ := e.reg.Get("FETCH")
	if err := e.reg.Update(spec); err != nil {
		t.Fatal(err)
	}
	if e.m.Len() != 2 {
		t.Fatalf("no-op update dropped entries: %d left", e.m.Len())
	}

	// A real change bumps the version, drops the entry through the hook,
	// and the new version's key misses. The running instance still serves
	// the old processor; only FETCH re-executes.
	spec.Description = "fetch catalog rows (rev 2)"
	if err := e.reg.Update(spec); err != nil {
		t.Fatal(err)
	}
	if e.m.Len() != 1 {
		t.Fatalf("update did not invalidate: %d entries", e.m.Len())
	}
	if _, err := c.ExecutePlan("session:memo-upd", chainPlan("p2"), nil); err != nil {
		t.Fatal(err)
	}
	if f := e.execs["FETCH"].Load(); f != 2 {
		t.Fatalf("FETCH executions = %d after version bump", f)
	}
}

// TestMemoReplannedStepNotCached: when a replan retry executes an
// alternative agent, the result must not be cached under the failing
// agent's key — the entry would be invalidated by the wrong agent/sources
// and hits would charge the wrong accuracy.
func TestMemoReplannedStepNotCached(t *testing.T) {
	e := newEnv(t)
	m := memo.New(16)
	spec := registry.AgentSpec{
		Name:        "FLAKY_MATCHER",
		Description: "match the job seeker profile with available job listings ranking match quality precisely",
		Cacheable:   true,
		Inputs:      []registry.ParamSpec{{Name: "JOBSEEKER_DATA", Type: "profile"}},
		Outputs:     []registry.ParamSpec{{Name: "MATCHES", Type: "rows"}},
	}
	if err := e.reg.Register(spec); err != nil {
		t.Fatal(err)
	}
	inst, err := agent.Attach(e.store, sess, agent.New(spec, func(ctx context.Context, inv agent.Invocation) (agent.Outputs, error) {
		return agent.Outputs{}, errors.New("model unavailable")
	}), agent.Options{DisableListen: true})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Stop()

	c := New(e.store, e.reg, e.tp, e.model, Options{RetryOnError: true, Memo: m})
	plan := &planner.Plan{
		ID: "memo-replan", Utterance: "match me", Intent: "rank",
		Steps: []planner.Step{
			{ID: "s1", Agent: "PROFILER", Task: "collect job seeker profile information from the user",
				Bindings: map[string]planner.Binding{"CRITERIA": {FromUserText: true}}},
			{ID: "s2", Agent: "FLAKY_MATCHER", Task: "match the job seeker profile with available job listings",
				Bindings: map[string]planner.Binding{"JOBSEEKER_DATA": {FromStep: "s1", FromParam: "JOBSEEKER_DATA"}}},
		},
	}
	res, err := c.ExecutePlan(sess, plan, budget.New(budget.Limits{}))
	if err != nil {
		t.Fatalf("replan retry failed: %v (res=%+v)", err, res)
	}
	if res.Replans != 1 {
		t.Fatalf("replans = %d", res.Replans)
	}
	// Nothing may be resident for the flaky agent's key (PROFILER is not
	// cacheable in this env, JOBMATCHER executed under FLAKY's step).
	if n := m.Len(); n != 0 {
		t.Fatalf("replanned step was cached: %d entries", n)
	}
}
