package planner

import (
	"fmt"
	"sort"
)

// Deps derives the plan's explicit step-dependency DAG from its bindings:
// for every step, the sorted, deduplicated IDs of the steps whose outputs it
// consumes (FromStep bindings). Steps absent from the result have no
// dependencies. The task coordinator schedules execution from this relation,
// dispatching every step whose dependencies are satisfied concurrently.
func (p *Plan) Deps() map[string][]string {
	deps := make(map[string][]string, len(p.Steps))
	for _, s := range p.Steps {
		seen := map[string]bool{}
		var ds []string
		for _, b := range s.Bindings {
			if b.FromStep != "" && !seen[b.FromStep] {
				seen[b.FromStep] = true
				ds = append(ds, b.FromStep)
			}
		}
		if len(ds) > 0 {
			sort.Strings(ds)
			deps[s.ID] = ds
		}
	}
	return deps
}

// Waves groups the plan's steps into topological waves: wave 0 holds the
// steps with no dependencies, wave k+1 the steps whose dependencies all lie
// in waves <= k. Steps within one wave are mutually independent, so a
// fan-out plan with N independent steps yields a single wave of N — the
// shape the concurrent scheduler exploits and the optimizer's critical-path
// projection reasons over. Returns an error when a binding references an
// unknown step or the dependencies form a cycle.
func (p *Plan) Waves() ([][]string, error) {
	known := make(map[string]bool, len(p.Steps))
	for _, s := range p.Steps {
		known[s.ID] = true
	}
	deps := p.Deps()
	indeg := make(map[string]int, len(p.Steps))
	children := map[string][]string{}
	for _, s := range p.Steps {
		for _, d := range deps[s.ID] {
			if !known[d] {
				return nil, fmt.Errorf("planner: step %s depends on unknown step %q", s.ID, d)
			}
			indeg[s.ID]++
			children[d] = append(children[d], s.ID)
		}
	}

	var waves [][]string
	var frontier []string
	for _, s := range p.Steps { // plan order keeps waves deterministic
		if indeg[s.ID] == 0 {
			frontier = append(frontier, s.ID)
		}
	}
	placed := 0
	for len(frontier) > 0 {
		waves = append(waves, frontier)
		placed += len(frontier)
		var next []string
		for _, id := range frontier {
			for _, child := range children[id] {
				indeg[child]--
				if indeg[child] == 0 {
					next = append(next, child)
				}
			}
		}
		sort.Strings(next)
		frontier = next
	}
	if placed != len(p.Steps) {
		var stuck []string
		for _, s := range p.Steps {
			if indeg[s.ID] > 0 {
				stuck = append(stuck, s.ID)
			}
		}
		return nil, fmt.Errorf("planner: dependency cycle among steps %v", stuck)
	}
	return waves, nil
}
