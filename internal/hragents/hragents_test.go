package hragents

import (
	"context"
	"strings"
	"testing"
	"time"

	"blueprint/internal/agent"
	"blueprint/internal/budget"
	"blueprint/internal/coordinator"
	"blueprint/internal/llm"
	"blueprint/internal/registry"
	"blueprint/internal/streams"
	"blueprint/internal/trace"
	"blueprint/internal/workload"
)

const sess = "session:hr"

// app wires the full Agentic Employer application: suite, registries,
// factory, all agents attached, and the coordinator service watching plans.
type app struct {
	store *streams.Store
	suite *Suite
	areg  *registry.AgentRegistry
	svc   *coordinator.Service
}

func newApp(t testing.TB, accuracy float64) *app {
	t.Helper()
	ent, err := workload.Build(21, workload.SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	model := llm.New(llm.Config{Name: "hr-llm", Tier: llm.TierLarge, CostPer1K: 0.01, BaseLatency: time.Millisecond, Accuracy: accuracy, Seed: 17}, ent.KB)
	suite, err := NewSuite(ent, model, nil)
	if err != nil {
		t.Fatal(err)
	}
	store := streams.NewStore()
	t.Cleanup(func() { store.Close() })

	areg := registry.NewAgentRegistry()
	if err := suite.RegisterAll(areg); err != nil {
		t.Fatal(err)
	}
	factory := agent.NewFactory(areg)
	suite.InstallConstructors(factory)

	var insts []*agent.Instance
	for _, name := range []string{AgenticEmployer, IntentClassifier, NL2Q, SQLExecutor, QuerySummarizer, Summarizer, Ranker, Profiler, JobMatcher, Presenter, Advisor, Moderator} {
		inst, err := factory.Spawn(store, sess, name, agent.Options{})
		if err != nil {
			t.Fatal(err)
		}
		insts = append(insts, inst)
	}
	t.Cleanup(func() {
		for _, in := range insts {
			in.Stop()
		}
	})

	coord := coordinator.New(store, areg, nil, model, coordinator.Options{})
	svc := coord.Serve(sess, budget.Limits{MaxCost: 1.0})
	svc.WatchPlans()
	t.Cleanup(svc.Stop)

	return &app{store: store, suite: suite, areg: areg, svc: svc}
}

func (a *app) postUser(t testing.TB, text string) {
	t.Helper()
	if _, err := a.store.Publish(streams.Message{
		Stream: sess + ":user", Session: sess, Kind: streams.Data,
		Sender: "user", Tags: []string{"user", "utterance"}, Payload: text,
	}); err != nil {
		t.Fatal(err)
	}
}

func (a *app) postEvent(t testing.TB, event map[string]any) {
	t.Helper()
	if _, err := a.store.Publish(streams.Message{
		Stream: sess + ":events", Session: sess, Kind: streams.Event,
		Sender: "user", Tags: []string{"ui", "event"}, Payload: event,
	}); err != nil {
		t.Fatal(err)
	}
}

// awaitDisplay waits until a display-stream message containing substr
// arrives.
func (a *app) awaitDisplay(t testing.TB, substr string) string {
	t.Helper()
	sub := a.store.Subscribe(streams.Filter{Streams: []string{agent.DisplayStream(sess)}}, true)
	defer sub.Cancel()
	deadline := time.After(15 * time.Second)
	for {
		select {
		case m, ok := <-sub.C():
			if !ok {
				t.Fatal("display stream closed")
			}
			s := m.PayloadString()
			if strings.Contains(s, substr) {
				return s
			}
		case <-deadline:
			t.Fatalf("no display output containing %q", substr)
		}
	}
}

func TestFig10ConversationFlow(t *testing.T) {
	a := newApp(t, 1.0)
	a.postUser(t, "How many jobs are in San Francisco?")
	out := a.awaitDisplay(t, "Summary:")
	if !strings.Contains(out, "returned") {
		t.Fatalf("summary = %q", out)
	}
	// Verify the exact Fig. 10 chain as an ordered subsequence:
	// U (utterance) -> IC (intent) -> AE (NLQ) -> NL2Q (SQL) ->
	// QE (ROWS) -> QS (summary).
	flow := trace.Flow(a.store, sess)
	pattern := []trace.Matcher{
		{Sender: "user", Tag: "utterance", Kind: streams.Data},
		{Sender: IntentClassifier, Tag: TagIntent, Kind: streams.Data},
		{Sender: AgenticEmployer, Tag: TagNLQ, Kind: streams.Data},
		{Sender: NL2Q, Tag: TagSQL, Kind: streams.Data},
		{Sender: SQLExecutor, Tag: TagRows, Kind: streams.Data},
		{Sender: QuerySummarizer, Tag: TagSummary, Kind: streams.Data},
	}
	if _, ok := trace.MatchSequence(flow, pattern); !ok {
		t.Fatalf("Fig. 10 sequence not found in flow:\n%s", trace.Render(flow))
	}
}

func TestFig9UIFlow(t *testing.T) {
	a := newApp(t, 1.0)
	a.postEvent(t, map[string]any{"action": "select_job", "job_id": 12})
	out := a.awaitDisplay(t, "Job 12")
	if !strings.Contains(out, "Summary:") {
		t.Fatalf("summary = %q", out)
	}
	// Fig. 9: U (UI event) -> AE (job id + plan) -> TC (EXECUTE control) ->
	// S (summary).
	flow := trace.Flow(a.store, sess)
	pattern := []trace.Matcher{
		{Sender: "user", Tag: "ui", Kind: streams.Event},
		{Sender: AgenticEmployer, Tag: "plan", Kind: streams.Data},
		{Sender: "coordinator", Op: streams.OpExecuteAgent, Agent: Summarizer, Kind: streams.Control},
		{Sender: Summarizer, Tag: TagSummary, Kind: streams.Data},
	}
	if _, ok := trace.MatchSequence(flow, pattern); !ok {
		t.Fatalf("Fig. 9 sequence not found in flow:\n%s", trace.Render(flow))
	}
}

func TestSummarizeIntentFlow(t *testing.T) {
	a := newApp(t, 1.0)
	a.postUser(t, "Summarize the applicants for job 7")
	out := a.awaitDisplay(t, "Job 7")
	if !strings.Contains(out, "applicants") {
		t.Fatalf("summary = %q", out)
	}
}

func TestRankIntentFlow(t *testing.T) {
	a := newApp(t, 1.0)
	a.postUser(t, "Rank the top candidates for job 3")
	out := a.awaitDisplay(t, "Top applicants for job 3")
	if !strings.Contains(out, "1.") {
		t.Fatalf("ranked = %q", out)
	}
}

func TestJobMatcherEndToEnd(t *testing.T) {
	a := newApp(t, 1.0)
	// Drive PROFILER -> JOBMATCHER -> PRESENTER directly via EXECUTE.
	if err := agent.Execute(a.store, sess, Profiler,
		map[string]any{"CRITERIA": "data scientist position in SF bay area"}, "reply:profile", "jm1"); err != nil {
		t.Fatal(err)
	}
	if d := agent.AwaitDone(a.store, sess, "jm1"); d == nil || d.Op != agent.OpAgentDone {
		t.Fatalf("profiler failed: %+v", d)
	}
	msgs, err := a.store.ReadAll("reply:profile")
	if err != nil || len(msgs) == 0 {
		t.Fatalf("no profile output: %v", err)
	}
	profile := msgs[0].Payload.(map[string]any)
	if profile["title"] != "data scientist" || profile["location"] != "sf bay area" {
		t.Fatalf("profile = %v", profile)
	}

	if err := agent.Execute(a.store, sess, JobMatcher,
		map[string]any{"JOBSEEKER_DATA": profile, "LIMIT": 5}, "reply:matches", "jm2"); err != nil {
		t.Fatal(err)
	}
	if d := agent.AwaitDone(a.store, sess, "jm2"); d == nil || d.Op != agent.OpAgentDone {
		t.Fatalf("matcher failed: %+v", d)
	}
	msgs, _ = a.store.ReadAll("reply:matches")
	if len(msgs) == 0 {
		t.Fatal("no matches output")
	}
	matches := msgs[0].Payload.([]any)
	if len(matches) == 0 || len(matches) > 5 {
		t.Fatalf("matches = %d", len(matches))
	}
	// Every match must be a bay-area data-science job (ground truth).
	for _, m := range matches {
		mm := m.(map[string]any)
		id := mm["id"].(int64)
		if !a.suite.Ent.BayAreaDSJobIDs[id] {
			t.Fatalf("match %v not in ground truth", mm)
		}
	}
	// Scores sorted descending.
	prev := 2.0
	for _, m := range matches {
		sc := m.(map[string]any)["score"].(float64)
		if sc > prev {
			t.Fatal("matches not sorted by score")
		}
		prev = sc
	}
}

func TestModerator(t *testing.T) {
	a := newApp(t, 1.0)
	check := func(text string, wantAllowed bool) {
		t.Helper()
		id := "mod-" + text[:4]
		if err := agent.Execute(a.store, sess, Moderator, map[string]any{"TEXT": text}, "reply:"+id, id); err != nil {
			t.Fatal(err)
		}
		if d := agent.AwaitDone(a.store, sess, id); d == nil || d.Op != agent.OpAgentDone {
			t.Fatalf("moderator failed: %+v", d)
		}
		msgs, _ := a.store.ReadAll("reply:" + id)
		verdict := msgs[0].Payload.(map[string]any)
		if verdict["allowed"] != wantAllowed {
			t.Fatalf("verdict for %q = %v", text, verdict)
		}
	}
	check("here are your job matches", true)
	check("this contains an offensive term", false)
	check("never share your PASSWORD here", false)
}

func TestAdvisor(t *testing.T) {
	a := newApp(t, 1.0)
	if err := agent.Execute(a.store, sess, Advisor,
		map[string]any{"QUESTION": "what skills do I need to become a data scientist?"}, "reply:adv", "adv1"); err != nil {
		t.Fatal(err)
	}
	if d := agent.AwaitDone(a.store, sess, "adv1"); d == nil || d.Op != agent.OpAgentDone {
		t.Fatalf("advisor failed: %+v", d)
	}
	msgs, _ := a.store.ReadAll("reply:adv")
	advice := msgs[0].PayloadString()
	if !strings.Contains(advice, "python") {
		t.Fatalf("advice = %q", advice)
	}
}

func TestDiscoverTable(t *testing.T) {
	a := newApp(t, 1.0)
	if got := a.suite.discoverTable("how many jobs are in Seattle with salary over 150000"); got != "jobs" {
		t.Fatalf("jobs discovery = %s", got)
	}
	if got := a.suite.discoverTable("count applications with status interview"); got != "applications" {
		t.Fatalf("applications discovery = %s", got)
	}
}

func TestSpecsCompleteAndRegistered(t *testing.T) {
	a := newApp(t, 1.0)
	specs := a.suite.Specs()
	if len(specs) != 12 {
		t.Fatalf("specs = %d", len(specs))
	}
	for _, spec := range specs {
		if spec.Description == "" {
			t.Fatalf("spec %s missing description", spec.Name)
		}
		if _, err := a.areg.Get(spec.Name); err != nil {
			t.Fatalf("spec %s not registered: %v", spec.Name, err)
		}
	}
}

func TestDegradedModelStillCompletesFlows(t *testing.T) {
	a := newApp(t, 0.5)
	a.postUser(t, "How many jobs are in San Francisco?")
	// With a flaky model the intent may misroute, but the catch-all
	// open_query path must still produce *some* display output.
	a.awaitDisplay(t, "")
}

func TestExtractJobIDAndAsInt(t *testing.T) {
	if extractJobID("summarize job 42 please") != 42 {
		t.Fatal("extractJobID")
	}
	if extractJobID("no number here") != 1 {
		t.Fatal("extractJobID fallback")
	}
	if asInt(7) != 7 || asInt(int64(8)) != 8 || asInt(9.0) != 9 || asInt("x") != 0 {
		t.Fatal("asInt")
	}
}

func TestQueryJobByID(t *testing.T) {
	a := newApp(t, 1.0)
	res, err := a.suite.queryJobByID(1)
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("job 1 = %v err=%v", res, err)
	}
}

// Verify the processor-level behaviour of the AE signal router without
// streams.
func TestAgenticEmployerSignalRouting(t *testing.T) {
	a := newApp(t, 1.0)
	proc := a.suite.agenticEmployerProc()
	// Unknown signals error.
	if _, err := proc(context.Background(), agent.Invocation{Inputs: map[string]any{"SIGNAL": map[string]any{"bogus": 1}}}); err == nil {
		t.Fatal("unrecognized signal accepted")
	}
	if _, err := proc(context.Background(), agent.Invocation{Inputs: map[string]any{}}); err == nil {
		t.Fatal("missing signal accepted")
	}
	if _, err := proc(context.Background(), agent.Invocation{Inputs: map[string]any{"SIGNAL": map[string]any{"action": "unknown_action"}}}); err == nil {
		t.Fatal("unknown action accepted")
	}
	// Open query intent routes to NLQ.
	out, err := proc(context.Background(), agent.Invocation{Inputs: map[string]any{"SIGNAL": map[string]any{"intent": "open_query", "utterance": "how many jobs"}}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Values["QUERY"] != "how many jobs" || len(out.Tags) != 1 || out.Tags[0] != TagNLQ {
		t.Fatalf("open query routing = %+v", out)
	}
}
