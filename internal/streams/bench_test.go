package streams

import (
	"testing"
)

func BenchmarkAppend(b *testing.B) {
	s := NewStore()
	b.Cleanup(func() { s.Close() })
	if _, err := s.CreateStream("x", StreamInfo{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Append(Message{Stream: "x", Payload: i}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendWithTagFilterMiss(b *testing.B) {
	// Subscribers whose filters never match: measures routing overhead.
	s := NewStore()
	b.Cleanup(func() { s.Close() })
	if _, err := s.CreateStream("x", StreamInfo{}); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		sub := s.Subscribe(Filter{IncludeTags: []string{"never"}}, false)
		b.Cleanup(sub.Cancel)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Append(Message{Stream: "x", Tags: []string{"data"}, Payload: i}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubscribeReplay(b *testing.B) {
	s := NewStore()
	b.Cleanup(func() { s.Close() })
	if _, err := s.CreateStream("x", StreamInfo{}); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if _, err := s.Append(Message{Stream: "x", Payload: i}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sub := s.Subscribe(Filter{Streams: []string{"x"}}, true)
		for j := 0; j < 1000; j++ {
			<-sub.C()
		}
		sub.Cancel()
	}
}

func BenchmarkHistory(b *testing.B) {
	s := NewStore()
	b.Cleanup(func() { s.Close() })
	for st := 0; st < 10; st++ {
		id := string(rune('a' + st))
		if _, err := s.CreateStream(id, StreamInfo{Session: "s:1"}); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			if _, err := s.Append(Message{Stream: id, Payload: i}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if h := s.History("s:1"); len(h) != 1000 {
			b.Fatal("bad history")
		}
	}
}
