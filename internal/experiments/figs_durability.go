package experiments

import (
	"fmt"
	"os"
	"time"

	"blueprint"
)

// AblationDurability (A8) measures the durability subsystem: crash
// recovery as a benchmarked scenario, not just a code path.
//
//   - durable write overhead: N relational inserts with the shared WAL
//     attached versus in-memory — group commit and the reused encode
//     buffer keep the durable path within ~2x.
//   - cold-start replay: a crashed process (no snapshot) reopens by
//     replaying the full log of N committed writes.
//   - snapshot restore: after a graceful shutdown the same state reopens
//     from the snapshot — enforced >= 5x faster than full replay in full
//     mode (the acceptance floor at 50k records).
//   - warm memo across restart: a repeated ask after the restart must be
//     served from the restored memo store (hit rate > 0, enforced).
func AblationDurability(seed int64) (*Table, error) {
	records := 50000
	if Short {
		records = 3000
	}

	dir, err := os.MkdirTemp("", "bp-a8-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	t := &Table{ID: "A8", Title: "Durability: durable-write overhead, crash replay vs snapshot restore, warm memo across restart"}
	const question = "How many jobs are in San Francisco?"
	const insertSQL = `INSERT INTO events VALUES (?, ?, ?)`

	insertN := func(sys *blueprint.System, n int) error {
		if _, err := sys.Enterprise.DB.Exec(`CREATE TABLE events (id INT, kind TEXT, score FLOAT)`); err != nil {
			return err
		}
		stmt, err := sys.Enterprise.DB.Prepare(insertSQL)
		if err != nil {
			return err
		}
		for i := 1; i <= n; i++ {
			if _, err := stmt.Exec(i, "evt", float64(i)*0.5); err != nil {
				return err
			}
		}
		return nil
	}
	countEvents := func(sys *blueprint.System) (int64, error) {
		res, err := sys.Enterprise.DB.Query(`SELECT COUNT(*) FROM events`)
		if err != nil {
			return 0, err
		}
		return res.Rows[0][0].I, nil
	}

	// ---- Workload 1: durable write overhead ----
	memSys, err := blueprint.New(blueprint.Config{Seed: seed, ModelAccuracy: 1.0})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if err := insertN(memSys, records); err != nil {
		memSys.Close()
		return nil, err
	}
	memWall := time.Since(start)
	memSys.Close()

	sys, err := blueprint.New(blueprint.Config{Seed: seed, ModelAccuracy: 1.0, DataDir: dir})
	if err != nil {
		return nil, err
	}
	start = time.Now()
	if err := insertN(sys, records); err != nil {
		sys.Close()
		return nil, err
	}
	durWall := time.Since(start)
	t.Rows = append(t.Rows, Row{Series: "durable write overhead", Metrics: []Metric{
		{Name: "records", Value: fmt.Sprint(records)},
		{Name: "in_memory", Value: ms(memWall)},
		{Name: "durable", Value: ms(durWall)},
		{Name: "ratio", Value: fmt.Sprintf("%.2fx", durWall.Seconds()/memWall.Seconds())},
	}})

	// Warm the memo store so the restart scenario can measure reuse.
	sess, err := sys.StartSession("")
	if err != nil {
		sys.Close()
		return nil, err
	}
	coldRes, _, err := sess.ExecuteUtterance(question)
	if err != nil {
		sys.Close()
		return nil, err
	}
	sys.SimulateCrash() // flushed log, no snapshot

	// ---- Workload 2: cold-start replay of the full log ----
	sys2, err := blueprint.New(blueprint.Config{Seed: seed, ModelAccuracy: 1.0, DataDir: dir})
	if err != nil {
		return nil, err
	}
	rec2 := sys2.DurabilityStats().Recovery
	if rec2.SnapshotRestored {
		sys2.Close()
		return nil, fmt.Errorf("A8: crash restart restored a snapshot that should not exist")
	}
	if n, err := countEvents(sys2); err != nil || n != int64(records) {
		sys2.Close()
		return nil, fmt.Errorf("A8: replay recovered %d/%d rows (err %v)", n, records, err)
	}
	replay := rec2.Duration
	t.Rows = append(t.Rows, Row{Series: "cold start: full-log replay", Metrics: []Metric{
		{Name: "recovery", Value: ms(replay)},
		{Name: "replayed_records", Value: fmt.Sprint(rec2.ReplayedRecords)},
		{Name: "replayed_bytes", Value: fmt.Sprint(rec2.ReplayedBytes)},
	}})
	sys2.Close() // graceful: snapshot + truncate

	// ---- Workload 3: warm start from the snapshot ----
	sys3, err := blueprint.New(blueprint.Config{Seed: seed, ModelAccuracy: 1.0, DataDir: dir})
	if err != nil {
		return nil, err
	}
	defer sys3.Close()
	rec3 := sys3.DurabilityStats().Recovery
	if !rec3.SnapshotRestored {
		return nil, fmt.Errorf("A8: graceful restart did not restore from snapshot")
	}
	if n, err := countEvents(sys3); err != nil || n != int64(records) {
		return nil, fmt.Errorf("A8: snapshot restored %d/%d rows (err %v)", n, records, err)
	}
	restore := rec3.Duration
	speedup := replay.Seconds() / restore.Seconds()
	if !Short && speedup < 5 {
		return nil, fmt.Errorf("A8: snapshot restore only %.1fx faster than full replay at %d records (want >=5x)", speedup, records)
	}
	t.Rows = append(t.Rows, Row{Series: "warm start: snapshot restore", Metrics: []Metric{
		{Name: "recovery", Value: ms(restore)},
		{Name: "vs_replay", Value: fmt.Sprintf("%.1fx", speedup)},
		{Name: "replayed_records", Value: fmt.Sprint(rec3.ReplayedRecords)},
	}})

	// ---- Workload 4: warm memo across the restart ----
	if sys3.MemoStats().Restored == 0 {
		return nil, fmt.Errorf("A8: no memo entries restored across restart")
	}
	sess3, err := sys3.StartSession("")
	if err != nil {
		return nil, err
	}
	start = time.Now()
	warmRes, _, err := sess3.ExecuteUtterance(question)
	if err != nil {
		return nil, err
	}
	warmWall := time.Since(start)
	cached := 0
	for _, sr := range warmRes.Steps {
		if sr.Cached {
			cached++
		}
	}
	ms3 := sys3.MemoStats()
	if cached == 0 || ms3.Hits == 0 {
		return nil, fmt.Errorf("A8: warm-memo loss — repeated ask after restart executed all %d steps fresh", len(warmRes.Steps))
	}
	t.Rows = append(t.Rows, Row{Series: "repeated ask after restart", Metrics: []Metric{
		{Name: "wall", Value: ms(warmWall)},
		{Name: "memo_restored", Value: fmt.Sprint(ms3.Restored)},
		{Name: "steps_cached", Value: fmt.Sprintf("%d/%d", cached, len(warmRes.Steps))},
		{Name: "hit_rate", Value: pct(ms3.HitRate())},
		{Name: "cold_steps", Value: fmt.Sprint(len(coldRes.Steps))},
	}})

	t.Notes = append(t.Notes,
		"one DataDir holds every stateful layer: relational tables+schema versions, agent/data registries, memo entries, stream history",
		"crash recovery truncates a torn final record at the last valid CRC frame instead of failing the replay",
		fmt.Sprintf("snapshot restore replaces the %d-record log replay with one sequential read; superseded segments are deleted", records),
		"restored memo entries are version-checked against the restored registries, so a registry that moved on drops stale results")
	return t, nil
}
