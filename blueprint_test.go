package blueprint

import (
	"errors"
	"strings"
	"testing"
	"time"

	"blueprint/internal/budget"
	"blueprint/internal/hragents"
	"blueprint/internal/llm"
	"blueprint/internal/streams"
	"blueprint/internal/trace"
)

func newSystem(t testing.TB) *System {
	t.Helper()
	// Tests need deterministic routing, so pin a perfect model; accuracy
	// degradation is exercised explicitly in the benchmarks.
	sys, err := New(Config{ModelAccuracy: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	return sys
}

func TestNewDefaults(t *testing.T) {
	sys := newSystem(t)
	if sys.AgentRegistry.Len() != 13 { // 12 case-study agents + task planner
		t.Fatalf("agents = %d", sys.AgentRegistry.Len())
	}
	if sys.DataRegistry.Len() < 5 {
		t.Fatalf("data assets = %d", sys.DataRegistry.Len())
	}
	if sys.Model.Config().Tier != llm.TierLarge {
		t.Fatalf("tier = %s", sys.Model.Config().Tier)
	}
}

func TestFig1ArchitectureWiring(t *testing.T) {
	// The full Fig. 1 loop: user stream -> intent -> NL2Q -> SQL -> summary
	// -> display, through registries and streams only.
	sys := newSystem(t)
	s, err := sys.StartSession("")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	out, err := s.Ask("How many jobs are in San Francisco?", 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Summary:") {
		t.Fatalf("answer = %q", out)
	}
	// Observability: every hop is on the streams.
	flow := s.Flow()
	senders := trace.Senders(flow)
	joined := strings.Join(senders, ",")
	for _, want := range []string{"user", hragents.IntentClassifier, hragents.AgenticEmployer, hragents.NL2Q, hragents.SQLExecutor, hragents.QuerySummarizer} {
		if !strings.Contains(joined, want) {
			t.Fatalf("flow missing %s: %v", want, senders)
		}
	}
}

func TestClickFlow(t *testing.T) {
	sys := newSystem(t)
	s, err := sys.StartSession("")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	out, err := s.Click(map[string]any{"action": "select_job", "job_id": 5}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Job 5") {
		t.Fatalf("click result = %q", out)
	}
	// The display output can arrive before the coordinator service records
	// its result; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for len(s.PlanResults()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("coordinator executed no plan")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestExecuteUtteranceRunningExample(t *testing.T) {
	sys := newSystem(t)
	s, err := sys.StartSession("")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, plan, err := s.ExecuteUtterance("I am looking for a data scientist position in SF bay area.")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Intent != "job_search" || len(plan.Steps) != 3 {
		t.Fatalf("plan = %s", plan)
	}
	rendered, _ := res.Final["RENDERED"].(string)
	if rendered == "" {
		t.Fatalf("final = %+v", res.Final)
	}
	// Every presented job is in the Fig. 7 ground truth by construction.
	if !strings.Contains(rendered, "match") {
		t.Fatalf("rendered = %q", rendered)
	}
	if res.Budget.CostSpent <= 0 || res.Budget.Charges < 3 {
		t.Fatalf("budget = %+v", res.Budget)
	}
}

func TestBudgetEnforcedThroughFacade(t *testing.T) {
	sys, err := New(Config{Budget: budget.Limits{MaxCost: 0.000001}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	s, err := sys.StartSession("")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	_, _, err = s.ExecuteUtterance("I am looking for a data scientist position in SF bay area.")
	if err == nil {
		t.Fatal("micro-budget execution succeeded")
	}
}

func TestSessionIsolation(t *testing.T) {
	sys := newSystem(t)
	s1, err := sys.StartSession("session:a")
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	s2, err := sys.StartSession("session:b")
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	if _, err := s1.Ask("How many jobs are in Seattle?", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	// Session b saw none of session a's conversational traffic (its own
	// flow holds only agent ENTER/ADD setup signals).
	for _, step := range s2.Flow() {
		if step.Sender == "user" || step.Kind == streams.Data {
			t.Fatalf("session a traffic leaked into b: %+v", step)
		}
	}
}

func TestDuplicateSessionID(t *testing.T) {
	sys := newSystem(t)
	s, err := sys.StartSession("session:dup")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := sys.StartSession("session:dup"); err == nil {
		t.Fatal("duplicate session created")
	}
}

func TestWALPersistenceThroughFacade(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/blueprint.wal"
	sys, err := New(Config{WALPath: path})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sys.StartSession("")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ask("How many jobs are in Oakland?", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	sid := s.ID
	s.Close()
	sys.Close()

	// Recover and replay the conversation.
	store, err := streams.Open(streams.Options{WALPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	history := store.History(sid)
	if len(history) < 5 {
		t.Fatalf("recovered history = %d messages", len(history))
	}
	found := false
	for _, m := range history {
		if strings.Contains(m.PayloadString(), "How many jobs are in Oakland?") {
			found = true
		}
	}
	if !found {
		t.Fatal("utterance not recovered from WAL")
	}
}

func TestAskTimeout(t *testing.T) {
	sys, err := New(Config{DisableStandardAgents: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	s, err := sys.StartSession("")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// No agents listening: Ask must time out cleanly.
	_, err = s.Ask("hello?", 50*time.Millisecond)
	if !errors.Is(err, ErrNoResponse) {
		t.Fatalf("err = %v", err)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Seed != 42 || c.ModelTier != llm.TierLarge || c.Budget.MaxCost != 1.0 {
		t.Fatalf("defaults = %+v", c)
	}
	mc := Config{ModelTier: "bogus"}.withDefaults().modelConfig()
	if mc.Tier != llm.TierLarge {
		t.Fatalf("bogus tier resolved to %s", mc.Tier)
	}
	mc = Config{ModelAccuracy: 0.5}.withDefaults().modelConfig()
	if mc.Accuracy != 0.5 {
		t.Fatalf("accuracy override = %v", mc.Accuracy)
	}
}

// TestDataWriteInvalidatesMemo proves the production invalidation seam end
// to end: a warm coordinator plan is served from memo, and a plain SQL
// write through the enterprise engine (DB.OnWrite -> DataRegistry.Touch ->
// hierarchy propagation -> memo.InvalidateSource) drops the stale entries
// so the next execution recomputes against the new data.
func TestDataWriteInvalidatesMemo(t *testing.T) {
	sys := newSystem(t)
	s, err := sys.StartSession("")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Selecting a job routes through the coordinator (Fig. 9: AE emits a
	// Summarizer plan); SUMMARIZER is Cacheable with Reads: ["hr"].
	// A cold click yields two display messages (the agent's own rendering
	// plus the coordinator service's Final publish); Click returns on the
	// first. Settle the display stream after each click so a leftover
	// message never satisfies the next click's wait.
	settle := func() {
		t.Helper()
		prev := -1
		for i := 0; i < 100; i++ {
			if cur := len(s.Display()); cur == prev {
				return
			} else {
				prev = cur
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	click := func() string {
		t.Helper()
		out, err := s.Click(map[string]any{"action": "select_job", "job_id": 3}, 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		settle()
		return out
	}
	cold := click()
	if warm := click(); warm != cold {
		t.Fatalf("warm click diverged: %q vs %q", warm, cold)
	}
	if st := sys.MemoStats(); st.Hits == 0 {
		t.Fatalf("repeated click not served from memo: %+v", st)
	}

	// The data changes through the ordinary SQL surface — no registry call:
	// DB.OnWrite bumps hr.applications, the hierarchy propagates to "hr",
	// and SUMMARIZER's memo entry drops.
	if _, err := sys.Enterprise.DB.Exec(
		`INSERT INTO applications VALUES (9001, 3, 'p9001', 'applied', 0.99, 4)`); err != nil {
		t.Fatal(err)
	}
	if sys.MemoStats().Invalidations == 0 {
		t.Fatal("write did not invalidate any memo entries")
	}
	after := click()
	if after == cold {
		t.Fatalf("post-write summary did not reflect the new application: %q", after)
	}
	if !strings.Contains(after, "applied") {
		t.Fatalf("summary missing the new applied application: %q", after)
	}
}
