package relational

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func fpOf(t testing.TB, sql string) (string, []Value) {
	t.Helper()
	var fp fingerprint
	if !fingerprintStmt(&fp, sql) {
		t.Fatalf("fingerprint bailed on %q", sql)
	}
	return string(fp.key), append([]Value(nil), fp.lits...)
}

// Law 1: texts differing only in extractable literals share one shape key,
// and the literal values come out in token order.
func TestFingerprintLiteralVariantsShareKey(t *testing.T) {
	groups := [][]string{
		{
			`SELECT id FROM jobs WHERE city = 'Oakland' AND salary > 95000`,
			`SELECT id FROM jobs WHERE city = 'Seattle' AND salary > 120000`,
			`select id from jobs where city = 'X' and salary > 1 -- comment`,
			"SELECT  id\nFROM jobs\tWHERE city = 'spaced'  AND salary > 2",
		},
		{
			`INSERT INTO jobs VALUES (1, 'a', 90000)`,
			`INSERT INTO jobs VALUES (2, 'it''s', 120000)`,
		},
		{
			`UPDATE jobs SET title = 'x', salary = 1 WHERE id = 2`,
			`UPDATE jobs SET title = 'y', salary = 9 WHERE id = 4`,
		},
		{
			`DELETE FROM jobs WHERE salary BETWEEN 1 AND 2`,
			`DELETE FROM jobs WHERE salary BETWEEN 90000 AND 110000`,
		},
		{
			`SELECT city, COUNT(*) FROM jobs GROUP BY city HAVING COUNT(*) > 2`,
			`SELECT city, COUNT(*) FROM jobs GROUP BY city HAVING COUNT(*) > 99`,
		},
	}
	for _, g := range groups {
		k0, _ := fpOf(t, g[0])
		for _, sql := range g[1:] {
			k, _ := fpOf(t, sql)
			if k != k0 {
				t.Errorf("shape keys differ:\n%q\n%q", g[0], sql)
			}
		}
	}
	_, lits := fpOf(t, `UPDATE jobs SET title = 'x', salary = 7 WHERE id = 42`)
	want := []Value{NewString("x"), NewInt(7), NewInt(42)}
	if !reflect.DeepEqual(lits, want) {
		t.Errorf("extracted literals = %v, want %v", lits, want)
	}
}

// Law 2: structurally different statements never share a key — including the
// near-miss shapes that would collide under naive concatenation.
func TestFingerprintStructuralKeysDistinct(t *testing.T) {
	stmts := []string{
		`SELECT id FROM jobs WHERE city = 'x'`,
		`SELECT id FROM jobs WHERE city = ?`, // explicit param != auto literal
		`SELECT id FROM jobs WHERE city != 'x'`,
		`SELECT title FROM jobs WHERE city = 'x'`,
		`SELECT id FROM sites WHERE city = 'x'`,
		`SELECT id FROM jobs`,
		`SELECT 1 FROM jobs`, // projection literals inline
		`SELECT 2 FROM jobs`,
		`SELECT 'a' FROM jobs`, // inline strings are length-prefixed...
		`SELECT 'ab' FROM jobs`,
		`SELECT 'a', 'b' FROM jobs`, // ...so adjacency cannot collide
		`SELECT ab FROM jobs`,       // token boundaries are separator-marked
		`SELECT a b FROM jobs`,
		`SELECT a.b FROM jobs`,
		`SELECT id FROM jobs ORDER BY salary LIMIT 5`, // ORDER/LIMIT inline
		`SELECT id FROM jobs ORDER BY salary LIMIT 10`,
		`SELECT id FROM jobs ORDER BY salary DESC LIMIT 5`,
		`SELECT id FROM jobs ORDER BY city LIMIT 5`,
		`SELECT id FROM jobs LIMIT 5 OFFSET 3`,
		`SELECT id FROM jobs LIMIT 5 OFFSET 4`,
		`UPDATE jobs SET salary = 1 WHERE id = 2`,
		`DELETE FROM jobs WHERE id = 2`,
		`INSERT INTO jobs VALUES (1)`,
		`INSERT INTO jobs (id) VALUES (1)`,
		`EXPLAIN SELECT id FROM jobs WHERE city = 'x'`,
		`SELECT id FROM jobs WHERE city IN ('a')`,
		`SELECT id FROM jobs WHERE city IN ('a', 'b')`, // arity shapes the IN list
	}
	seen := map[string]string{}
	for _, sql := range stmts {
		k, _ := fpOf(t, sql)
		if prev, dup := seen[k]; dup {
			t.Errorf("shape key collision:\n%q\n%q", prev, sql)
		}
		seen[k] = sql
	}
}

// Bail cases: statements the fingerprint pass refuses get exact-text keys.
func TestFingerprintBail(t *testing.T) {
	var fp fingerprint
	bail := []string{
		``,
		`   `,
		`-- just a comment`,
		`CREATE TABLE t (a INT)`,
		`CREATE INDEX ix ON t (a)`,
		`DROP TABLE t`,
		`foo bar`,              // leading identifier
		`42`,                   // leading number
		`SELECT 'unterminated`, // lexical error
		`SELECT id FROM jobs WHERE x = 99999999999999999999999999`, // int overflow
		`EXPLAIN`,         // EXPLAIN with no statement keyword
		`EXPLAIN EXPLAIN`, // never reaches a statement keyword
	}
	// A giant IN list blows the auto-param bound.
	var sb strings.Builder
	sb.WriteString(`SELECT id FROM jobs WHERE id IN (0`)
	for i := 1; i <= maxAutoParams; i++ {
		fmt.Fprintf(&sb, ", %d", i)
	}
	sb.WriteString(`)`)
	bail = append(bail, sb.String())
	for _, sql := range bail {
		if fingerprintStmt(&fp, sql) {
			t.Errorf("fingerprint accepted %q", sql)
		}
	}
	// One literal under the bound still fingerprints.
	under := `SELECT id FROM jobs WHERE id IN (0` + strings.Repeat(", 1", maxAutoParams-1) + `)`
	if !fingerprintStmt(&fp, under) {
		t.Errorf("fingerprint bailed under the auto-param bound")
	}
}

// After warm-up the fingerprint sweep is allocation-free (pool-resident
// scratch, substring tokens, no per-statement garbage).
func TestFingerprintZeroAllocWarm(t *testing.T) {
	const sql = `SELECT id, title FROM jobs WHERE city = 'Oakland' AND salary > 95000 AND id IN (1, 2, 3) ORDER BY salary DESC LIMIT 10`
	fp := &fingerprint{}
	fingerprintStmt(fp, sql) // warm the scratch buffers
	allocs := testing.AllocsPerRun(100, func() {
		if !fingerprintStmt(fp, sql) {
			t.Fatal("bailed")
		}
	})
	if allocs != 0 {
		t.Fatalf("warm fingerprint sweep allocates %v times per run, want 0", allocs)
	}
}

// DB-level sharing: literal variants hit one cached shape, results stay
// correct per-variant, and the counters attribute traffic correctly.
func TestShapeCacheSharing(t *testing.T) {
	db := stmtTestDB(t)
	db.SetStmtCacheCapacity(0)
	db.SetStmtCacheCapacity(DefaultStmtCacheCapacity)
	db.ResetCacheStats()
	for i := 0; i < 10; i++ {
		res, err := db.Query(fmt.Sprintf(`SELECT title FROM jobs WHERE id = %d`, i))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0].S != fmt.Sprintf("title%d", i%5) {
			t.Fatalf("id %d: rows = %v", i, res.Rows)
		}
	}
	stats := db.CacheStats()
	if stats.Misses != 1 || stats.ShapeHits != 9 || stats.Hits != 9 {
		t.Errorf("10 literal variants: %+v, want 1 miss + 9 shape hits", stats)
	}
	if stats.Size != 1 {
		t.Errorf("size = %d, want 1 shared entry", stats.Size)
	}
	if stats.Compiles > 1 {
		t.Errorf("compiles = %d, want at most 1 shared compilation", stats.Compiles)
	}

	// Explicit '?' params and auto literals mix in one statement.
	for i := 0; i < 4; i++ {
		res, err := db.Query(`SELECT id FROM jobs WHERE city = 'Oakland' AND id < ?`, 3*i)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res.Rows {
			if r[0].I >= int64(3*i) {
				t.Fatalf("explicit bound ignored: %v with bound %d", r, 3*i)
			}
		}
	}
}

// Counter taxonomy: DDL is uncacheable (not a miss), fingerprint bails fall
// back to exact keys, parse errors count nothing.
func TestShapeCacheCounterTaxonomy(t *testing.T) {
	db := stmtTestDB(t)
	db.ResetCacheStats()
	if _, err := db.Exec(`CREATE TABLE tax (a INT)`); err != nil {
		t.Fatal(err)
	}
	stats := db.CacheStats()
	if stats.Uncacheable != 1 || stats.Misses != 0 {
		t.Errorf("DDL: %+v, want 1 uncacheable and 0 misses", stats)
	}

	// A >maxAutoParams IN list bails to exact keying but still caches.
	var sb strings.Builder
	sb.WriteString(`SELECT id FROM jobs WHERE id IN (0`)
	for i := 1; i <= maxAutoParams; i++ {
		fmt.Fprintf(&sb, ", %d", i)
	}
	sb.WriteString(`)`)
	db.ResetCacheStats()
	for i := 0; i < 3; i++ {
		if _, err := db.Query(sb.String()); err != nil {
			t.Fatal(err)
		}
	}
	stats = db.CacheStats()
	if stats.ExactFallbacks != 3 || stats.Misses != 1 || stats.Hits != 2 || stats.ShapeHits != 0 {
		t.Errorf("oversized IN list: %+v, want 1 miss + 2 exact hits, all fallbacks", stats)
	}

	db.ResetCacheStats()
	if _, err := db.Query(`SELECT FROM WHERE`); err == nil {
		t.Fatal("bad statement parsed")
	}
	stats = db.CacheStats()
	if stats.Misses != 0 && stats.Hits != 0 && stats.Uncacheable != 0 {
		t.Errorf("parse error counted: %+v", stats)
	}
}

// SetShapeCacheEnabled(false) reverts to exact-text keying: literal variants
// stop sharing.
func TestShapeCacheDisabled(t *testing.T) {
	db := stmtTestDB(t)
	db.SetShapeCacheEnabled(false)
	defer db.SetShapeCacheEnabled(true)
	db.SetStmtCacheCapacity(0)
	db.SetStmtCacheCapacity(DefaultStmtCacheCapacity)
	db.ResetCacheStats()
	for i := 0; i < 5; i++ {
		if _, err := db.Query(fmt.Sprintf(`SELECT title FROM jobs WHERE id = %d`, i)); err != nil {
			t.Fatal(err)
		}
	}
	stats := db.CacheStats()
	if stats.ShapeHits != 0 || stats.Misses != 5 || stats.Size != 5 {
		t.Errorf("disabled shape keying: %+v, want 5 exact misses", stats)
	}
}

// Missing explicit parameters must report the same user-visible ordinal
// through the shape-keyed path as through a cold exact parse — auto literal
// slots must not renumber the error.
func TestShapeKeyedMissingParamErrorParity(t *testing.T) {
	cases := []struct {
		sql    string
		params []any
	}{
		// Auto literal before the unsupplied '?': the error must still carry
		// the explicit ordinal 1, not the unified slot number.
		{`SELECT id FROM jobs WHERE city = 'Oakland' AND id < ?`, nil},
		// First '?' supplied, second missing: ordinal 2.
		{`SELECT id FROM jobs WHERE salary > ? AND id < ?`, []any{0}},
	}
	for _, c := range cases {
		shaped := stmtTestDB(t)
		_, shapedErr := shaped.Query(c.sql, c.params...)
		exact := stmtTestDB(t)
		exact.SetShapeCacheEnabled(false)
		_, exactErr := exact.Query(c.sql, c.params...)
		if shapedErr == nil || exactErr == nil {
			t.Fatalf("%s: expected missing-parameter errors, got %v / %v", c.sql, shapedErr, exactErr)
		}
		if shapedErr.Error() != exactErr.Error() {
			t.Fatalf("%s: error parity: shape-keyed %q vs exact %q", c.sql, shapedErr, exactErr)
		}
	}
}

// The decisive law: shape-keyed compiled execution is byte-identical —
// columns, rows, plans and errors — to exact-keyed interpreted execution
// over a corpus of literal variants.
func TestDifferentialShapeVsExact(t *testing.T) {
	shaped := diffDB(t, 19)
	exact := diffDB(t, 19)
	exact.SetShapeCacheEnabled(false)
	exact.SetCompileEnabled(false)
	shaped.ResetCacheStats() // fixture population traffic is not under test

	templates := []string{
		`SELECT id, title FROM jobs WHERE city = '%s' ORDER BY id`,
		`SELECT id FROM jobs WHERE salary > %d AND remote = TRUE ORDER BY id`,
		`SELECT id, salary FROM jobs WHERE salary BETWEEN %d AND 110000 ORDER BY id`,
		`SELECT id FROM jobs WHERE city IN ('%s', 'Austin') ORDER BY id`,
		`EXPLAIN SELECT id FROM jobs WHERE city = '%s'`,
		`EXPLAIN SELECT id FROM jobs WHERE salary >= %d`,
		`SELECT city, COUNT(*) AS n FROM jobs WHERE salary > %d GROUP BY city HAVING COUNT(*) > 1 ORDER BY city`,
		`SELECT j.title, c.name FROM jobs j JOIN companies c ON j.company_id = c.id WHERE c.size = '%s' ORDER BY j.title, c.name`,
		`SELECT id FROM jobs WHERE title = '%s'`,
		`SELECT DISTINCT title FROM jobs WHERE salary > %d ORDER BY title LIMIT 3`,
	}
	strArgs := []string{"Oakland", "Seattle", "Austin", "San Jose", "mid", "large", "it's odd", ""}
	intArgs := []int{90000, 95000, 100000, 105000, 111000}

	run := func(sql string) {
		t.Helper()
		got, gotErr := shaped.Query(sql)
		want, wantErr := exact.Query(sql)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("%s: shaped err = %v, exact err = %v", sql, gotErr, wantErr)
		}
		if gotErr != nil {
			if gotErr.Error() != wantErr.Error() {
				t.Fatalf("%s: shaped err %q, exact err %q", sql, gotErr, wantErr)
			}
			return
		}
		if !reflect.DeepEqual(got.Columns, want.Columns) || len(got.Rows) != len(want.Rows) {
			t.Fatalf("%s:\nshaped: %v %v\nexact:  %v %v", sql, got.Columns, got.Rows, want.Columns, want.Rows)
		}
		for i := range got.Rows {
			if !reflect.DeepEqual(got.Rows[i], want.Rows[i]) {
				t.Fatalf("%s: row %d differs: %v vs %v", sql, i, got.Rows[i], want.Rows[i])
			}
		}
		if got.Plan != want.Plan {
			t.Fatalf("%s: plan %q vs %q", sql, got.Plan, want.Plan)
		}
	}
	for _, tpl := range templates {
		if strings.Contains(tpl, "%s") {
			for _, a := range strArgs {
				run(fmt.Sprintf(tpl, strings.ReplaceAll(a, "'", "''")))
			}
		} else {
			for _, a := range intArgs {
				run(fmt.Sprintf(tpl, a))
			}
		}
	}
	// Literal variants really did share: far fewer misses than statements.
	stats := shaped.CacheStats()
	if stats.ShapeHits == 0 || stats.Misses > uint64(len(templates)) {
		t.Errorf("shape sharing ineffective: %+v over %d templates", stats, len(templates))
	}

	// DML variants: mutate both databases through their own paths, then the
	// full table states must agree.
	dml := []string{
		`UPDATE jobs SET salary = 123456 WHERE city = 'Oakland' AND salary < 100000`,
		`UPDATE jobs SET salary = 140000 WHERE city = 'Seattle' AND salary < 95000`,
		`UPDATE jobs SET title = 'promoted ''again''' WHERE id = 7`,
		`DELETE FROM jobs WHERE id IN (1, 3, 5)`,
		`DELETE FROM jobs WHERE id IN (2, 4, 6)`,
		`INSERT INTO jobs VALUES (900, 'shaped', 'Reno', 1, 90001, TRUE)`,
		`INSERT INTO jobs VALUES (901, 'exact', 'Reno', 2, 90002, FALSE)`,
	}
	for _, sql := range dml {
		na, errA := shaped.Exec(sql)
		nb, errB := exact.Exec(sql)
		if (errA == nil) != (errB == nil) || na != nb {
			t.Fatalf("%s: shaped (%d, %v) vs exact (%d, %v)", sql, na, errA, nb, errB)
		}
		run(`SELECT * FROM jobs ORDER BY id`)
	}
}
