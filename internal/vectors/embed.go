// Package vectors provides deterministic text embeddings and vector search
// used by the agent and data registries for semantic discovery.
//
// The paper calls for "vector-based techniques using learned representations
// derived from metadata and logs" (§V-C, §V-D). Since training a model is out
// of scope for a reproducible offline build, this package implements a
// feature-hashing embedder: tokens (unigrams and bigrams) are hashed into a
// fixed-dimension vector with deterministic signs, then L2-normalized. This
// preserves the mechanics the architecture depends on — cosine similarity
// between related texts is higher than between unrelated texts, embeddings
// are composable and cacheable — while being fully deterministic.
package vectors

import (
	"hash/fnv"
	"math"
	"strings"
)

// DefaultDim is the embedding dimensionality used across the system.
const DefaultDim = 128

// Embedder converts text into fixed-dimension vectors.
type Embedder struct {
	dim int
}

// NewEmbedder returns an Embedder producing vectors of the given dimension.
// If dim <= 0, DefaultDim is used.
func NewEmbedder(dim int) *Embedder {
	if dim <= 0 {
		dim = DefaultDim
	}
	return &Embedder{dim: dim}
}

// Dim reports the dimensionality of produced vectors.
func (e *Embedder) Dim() int { return e.dim }

// Embed returns the L2-normalized feature-hash embedding of text.
// The zero vector is returned for empty input.
func (e *Embedder) Embed(text string) []float64 {
	v := make([]float64, e.dim)
	toks := Tokenize(text)
	if len(toks) == 0 {
		return v
	}
	add := func(tok string, weight float64) {
		h := fnv.New64a()
		h.Write([]byte(tok))
		sum := h.Sum64()
		idx := int(sum % uint64(e.dim))
		sign := 1.0
		if (sum>>32)&1 == 1 {
			sign = -1.0
		}
		v[idx] += sign * weight
	}
	for _, t := range toks {
		add(t, 1.0)
	}
	// Bigrams capture local phrase structure ("data scientist" vs "data" +
	// "scientist") with half weight so single-token overlap still matters.
	for i := 0; i+1 < len(toks); i++ {
		add(toks[i]+"_"+toks[i+1], 0.5)
	}
	return Normalize(v)
}

// EmbedWeighted embeds several texts and combines them with the given
// weights, renormalizing the result. It is used to blend metadata embeddings
// with usage-log embeddings ("historical usage data can be leveraged to
// compute enhanced embeddings", §V-C). Inputs of unequal length are ignored.
func (e *Embedder) EmbedWeighted(texts []string, weights []float64) []float64 {
	v := make([]float64, e.dim)
	if len(texts) != len(weights) {
		return v
	}
	for i, t := range texts {
		ev := e.Embed(t)
		for j := range v {
			v[j] += weights[i] * ev[j]
		}
	}
	return Normalize(v)
}

// Tokenize lowercases text, splits it into alphanumeric tokens and applies
// a light plural-stripping stem so "titles" and "title", "cities" and "city"
// hash identically on both the query and document sides.
func Tokenize(text string) []string {
	text = strings.ToLower(text)
	var toks []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			toks = append(toks, stem(b.String()))
			b.Reset()
		}
	}
	for _, r := range text {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
			b.WriteRune(r)
		} else {
			flush()
		}
	}
	flush()
	return toks
}

// stem strips common plural suffixes: "ies"->"y" and a trailing "s" (but
// not "ss"). Stems are substrings or simple variants of the original token,
// so keyword substring matching remains sound.
func stem(tok string) string {
	switch {
	case len(tok) > 4 && strings.HasSuffix(tok, "ies"):
		return tok[:len(tok)-3] + "y"
	case len(tok) > 3 && strings.HasSuffix(tok, "s") && !strings.HasSuffix(tok, "ss"):
		return tok[:len(tok)-1]
	default:
		return tok
	}
}

// Normalize scales v to unit L2 norm in place and returns it.
// The zero vector is returned unchanged.
func Normalize(v []float64) []float64 {
	var sum float64
	for _, x := range v {
		sum += x * x
	}
	if sum == 0 {
		return v
	}
	n := math.Sqrt(sum)
	for i := range v {
		v[i] /= n
	}
	return v
}

// Cosine returns the cosine similarity of a and b. Vectors of different
// lengths or zero vectors yield 0.
func Cosine(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}
