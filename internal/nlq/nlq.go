// Package nlq implements the blueprint's natural-language/query bridges:
// an intent classifier, NL2Q (a semantic parser compiling natural-language
// questions to the relational engine's SQL dialect against a discovered
// table), and Q2NL (the operator the data planner injects to turn a query
// fragment into a natural-language prompt for an LLM data source, §V-G).
//
// NL2Q is deliberately rule-based rather than LLM-backed: the paper's case
// study treats NL2Q as a registered enterprise model ("the NL2Q agent
// identifies a suitable database query", §VI), and a deterministic parser
// both reproduces that role and keeps every experiment reproducible.
package nlq

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Intents used across the case study (§VI: the Intent Classifier responds
// with the identified intent; "open_query" is the catch-all).
var StandardIntents = []string{
	"job_search", "summarize", "rank", "profile", "career_advice", "smalltalk", "open_query",
}

// Target describes the table NL2Q compiles against, as discovered from the
// data registry.
type Target struct {
	// Table is the SQL table name.
	Table string
	// Columns are the table's column names.
	Columns []string
	// NumericColumns flags which columns support comparisons.
	NumericColumns []string
	// TextColumns flags which columns hold text (LIKE-able).
	TextColumns []string
	// ValueHints maps a column to known values (a gazetteer), letting the
	// parser ground multiword values like "San Francisco".
	ValueHints map[string][]string
	// DefaultTextColumn receives unattached quoted phrases.
	DefaultTextColumn string
}

// Compiled is the result of NL2Q.
type Compiled struct {
	// SQL is the generated statement.
	SQL string
	// Confidence in [0,1] grows with the number of grounded fragments.
	Confidence float64
	// Explanation lists the recognized fragments, for transparency.
	Explanation []string
}

// Compile translates a natural-language question into SQL against the
// target. It recognizes aggregates (count/average/sum/min/max), column
// comparisons, grounded values, grouping ("per <col>"), ordering
// ("top N by <col>", "sorted by"), and limits.
func Compile(query string, tgt Target) (Compiled, error) {
	if tgt.Table == "" {
		return Compiled{}, fmt.Errorf("nlq: target table required")
	}
	q := strings.ToLower(query)
	q = strings.TrimSuffix(strings.TrimSpace(q), "?")
	var (
		where    []string
		explain  []string
		groupBy  string
		orderBy  string
		desc     bool
		limit    = -1
		selectCl = "*"
		grounded = 0
	)

	has := func(col string) bool {
		for _, c := range tgt.Columns {
			if strings.EqualFold(c, col) {
				return true
			}
		}
		return false
	}
	isNumeric := func(col string) bool {
		for _, c := range tgt.NumericColumns {
			if strings.EqualFold(c, col) {
				return true
			}
		}
		return false
	}

	// --- Aggregates ---
	aggDetected := false
	switch {
	case strings.Contains(q, "how many") || strings.HasPrefix(q, "count") || strings.Contains(q, "number of"):
		selectCl = "COUNT(*) AS n"
		aggDetected = true
		explain = append(explain, "aggregate: COUNT(*)")
		grounded++
	default:
		for _, agg := range []struct{ cue, fn string }{
			{"average", "AVG"}, {"avg", "AVG"}, {"mean", "AVG"},
			{"total", "SUM"}, {"sum of", "SUM"},
			{"highest", "MAX"}, {"maximum", "MAX"},
			{"lowest", "MIN"}, {"minimum", "MIN"},
		} {
			if idx := strings.Index(q, agg.cue); idx >= 0 {
				col := firstColumnAfter(q[idx:], tgt.Columns)
				if col != "" && isNumeric(col) {
					selectCl = fmt.Sprintf("%s(%s) AS %s_%s", agg.fn, col, strings.ToLower(agg.fn), col)
					aggDetected = true
					explain = append(explain, fmt.Sprintf("aggregate: %s(%s)", agg.fn, col))
					grounded++
					break
				}
			}
		}
	}

	// --- Grouping: "per <col>" / "by <col>" with an aggregate ---
	if aggDetected {
		for _, cue := range []string{" per ", " by ", " for each ", " grouped by "} {
			if idx := strings.Index(q, cue); idx >= 0 {
				col := firstColumnAfter(q[idx:], tgt.Columns)
				if col != "" {
					groupBy = col
					selectCl = col + ", " + selectCl
					explain = append(explain, "group by: "+col)
					grounded++
					break
				}
			}
		}
	}

	// --- Numeric comparisons ---
	for _, cmp := range []struct{ cue, op string }{
		{"greater than or equal to", ">="}, {"less than or equal to", "<="},
		{"at least", ">="}, {"at most", "<="},
		{"more than", ">"}, {"greater than", ">"}, {"over", ">"}, {"above", ">"},
		{"less than", "<"}, {"under", "<"}, {"below", "<"},
		{"equal to", "="}, {"exactly", "="},
	} {
		idx := 0
		rest := q
		for {
			i := strings.Index(rest, cmp.cue)
			if i < 0 {
				break
			}
			abs := idx + i
			num, ok := firstNumberAfter(q[abs+len(cmp.cue):])
			if ok {
				col := lastNumericColumnBefore(q[:abs], tgt)
				if col == "" {
					col = firstColumnAfter(q[abs:], tgt.Columns)
					if col != "" && !isNumeric(col) {
						col = ""
					}
				}
				if col != "" {
					cond := fmt.Sprintf("%s %s %s", col, cmp.op, num)
					if !containsStr(where, cond) {
						where = append(where, cond)
						explain = append(explain, "filter: "+cond)
						grounded++
					}
				}
			}
			idx = abs + len(cmp.cue)
			rest = q[idx:]
		}
	}

	// --- Grounded values from hints (multiword capable) ---
	type hint struct{ col, val string }
	var hintList []hint
	for col, vals := range tgt.ValueHints {
		for _, v := range vals {
			hintList = append(hintList, hint{col, v})
		}
	}
	// Longest values first so "San Francisco" beats "Francisco".
	sort.Slice(hintList, func(i, j int) bool { return len(hintList[i].val) > len(hintList[j].val) })
	used := map[string]bool{}
	for _, h := range hintList {
		if used[h.col] {
			continue
		}
		if strings.Contains(q, strings.ToLower(h.val)) {
			where = append(where, fmt.Sprintf("%s = '%s'", h.col, escape(h.val)))
			explain = append(explain, fmt.Sprintf("filter: %s = %s (grounded)", h.col, h.val))
			used[h.col] = true
			grounded++
		}
	}

	// --- "with <textcol> <value>" / "<textcol> is <value>" patterns ---
	for _, col := range tgt.TextColumns {
		if used[col] {
			continue
		}
		lc := strings.ToLower(col)
		for _, pat := range []string{lc + " is ", lc + " = ", "with " + lc + " ", lc + " of "} {
			if idx := strings.Index(q, pat); idx >= 0 {
				val := firstWordAfter(q[idx+len(pat):])
				if val != "" {
					where = append(where, fmt.Sprintf("%s = '%s'", col, escape(val)))
					explain = append(explain, fmt.Sprintf("filter: %s = %s", col, val))
					used[col] = true
					grounded++
					break
				}
			}
		}
	}

	// --- Quoted phrases -> LIKE on default text column ---
	for _, phrase := range quotedPhrases(query) {
		col := tgt.DefaultTextColumn
		if col == "" && len(tgt.TextColumns) > 0 {
			col = tgt.TextColumns[0]
		}
		if col != "" {
			where = append(where, fmt.Sprintf("%s LIKE '%%%s%%'", col, escape(phrase)))
			explain = append(explain, fmt.Sprintf("filter: %s LIKE %%%s%%", col, phrase))
			grounded++
		}
	}

	// --- Ordering: "top N by col", "sorted by col", "best" ---
	if idx := strings.Index(q, "top "); idx >= 0 {
		if num, ok := firstNumberAfter(q[idx+4:]); ok {
			if n, err := strconv.Atoi(num); err == nil {
				limit = n
				explain = append(explain, fmt.Sprintf("limit: %d", n))
				grounded++
			}
		}
		if col := firstColumnAfter(q[idx:], tgt.Columns); col != "" && isNumeric(col) {
			orderBy, desc = col, true
			explain = append(explain, "order: "+col+" desc")
		}
	}
	for _, cue := range []string{"sorted by ", "ordered by ", "order by "} {
		if idx := strings.Index(q, cue); idx >= 0 {
			if col := firstColumnAfter(q[idx:], tgt.Columns); col != "" {
				orderBy = col
				desc = strings.Contains(q[idx:], "desc") || strings.Contains(q[idx:], "highest")
				explain = append(explain, "order: "+col)
				grounded++
			}
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "SELECT %s FROM %s", selectCl, tgt.Table)
	if len(where) > 0 {
		sb.WriteString(" WHERE " + strings.Join(where, " AND "))
	}
	if groupBy != "" {
		sb.WriteString(" GROUP BY " + groupBy)
	}
	if orderBy != "" {
		sb.WriteString(" ORDER BY " + orderBy)
		if desc {
			sb.WriteString(" DESC")
		}
	}
	if limit >= 0 {
		fmt.Fprintf(&sb, " LIMIT %d", limit)
	}

	conf := 0.2 + 0.2*float64(grounded)
	if conf > 0.95 {
		conf = 0.95
	}
	_ = has
	return Compiled{SQL: sb.String(), Confidence: conf, Explanation: explain}, nil
}

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

func escape(s string) string { return strings.ReplaceAll(s, "'", "''") }

// firstColumnAfter finds the first known column name appearing in text.
func firstColumnAfter(text string, columns []string) string {
	best, bestIdx := "", len(text)+1
	for _, c := range columns {
		idx := strings.Index(text, strings.ToLower(c))
		if idx >= 0 && idx < bestIdx {
			best, bestIdx = c, idx
		}
	}
	return best
}

// lastNumericColumnBefore finds the numeric column mentioned closest to the
// end of text.
func lastNumericColumnBefore(text string, tgt Target) string {
	best, bestIdx := "", -1
	for _, c := range tgt.NumericColumns {
		idx := strings.LastIndex(text, strings.ToLower(c))
		if idx > bestIdx {
			best, bestIdx = c, idx
		}
	}
	return best
}

func firstNumberAfter(text string) (string, bool) {
	fields := strings.Fields(text)
	for _, f := range fields[:min(len(fields), 4)] {
		f = strings.Trim(f, ",.;:$")
		f = strings.ReplaceAll(f, ",", "")
		if f == "" {
			continue
		}
		if _, err := strconv.ParseFloat(f, 64); err == nil {
			return f, true
		}
		// "180k" -> 180000
		if strings.HasSuffix(f, "k") {
			if n, err := strconv.ParseFloat(strings.TrimSuffix(f, "k"), 64); err == nil {
				return strconv.FormatFloat(n*1000, 'f', -1, 64), true
			}
		}
	}
	return "", false
}

func firstWordAfter(text string) string {
	fields := strings.Fields(text)
	if len(fields) == 0 {
		return ""
	}
	return strings.Trim(fields[0], ",.;:'\"")
}

func quotedPhrases(text string) []string {
	var out []string
	for {
		i := strings.IndexByte(text, '\'')
		if i < 0 {
			break
		}
		j := strings.IndexByte(text[i+1:], '\'')
		if j < 0 {
			break
		}
		out = append(out, text[i+1:i+1+j])
		text = text[i+j+2:]
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Q2NL renders a structured sub-query as a natural-language prompt for an
// LLM data source — the operator the data planner injects when a query
// fragment cannot be answered from enterprise data (§V-G, Fig. 7).
func Q2NL(operation, argument string) string {
	switch operation {
	case "cities_in_region":
		return "list the cities in the " + argument
	case "related_titles":
		return "list the titles related to " + argument
	case "skills_for_title":
		return "list the skills for a " + argument
	default:
		return "list " + operation + " for " + argument
	}
}
