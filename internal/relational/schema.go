package relational

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// Engine errors.
var (
	ErrTableExists   = errors.New("relational: table already exists")
	ErrTableNotFound = errors.New("relational: table not found")
	ErrColumnUnknown = errors.New("relational: unknown column")
	ErrIndexExists   = errors.New("relational: index already exists")
	ErrTypeMismatch  = errors.New("relational: type mismatch")
	ErrArity         = errors.New("relational: wrong number of values")
)

// Column describes one table column.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered set of columns.
type Schema struct {
	Columns []Column
}

// ColIndex returns the position of the named column (case-insensitive),
// or -1 if absent.
func (s *Schema) ColIndex(name string) int {
	for i, c := range s.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Names returns the column names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		out[i] = c.Name
	}
	return out
}

// String renders the schema as "name TYPE, ...".
func (s *Schema) String() string {
	parts := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		parts[i] = c.Name + " " + c.Type.String()
	}
	return strings.Join(parts, ", ")
}

// table is the storage for one table: rows plus secondary indexes.
type table struct {
	mu      sync.RWMutex
	name    string
	schema  Schema
	rows    []Row
	live    []bool // tombstones for DELETE
	liveCnt int
	indexes map[string]*indexDef // by column name (lowercased)
}

// indexDef is a secondary index over a single column.
type indexDef struct {
	name   string
	column string
	col    int
	kind   IndexKind
	hash   map[string][]int // value key -> row ids
	order  *orderedIndex
}

// IndexKind selects the index structure.
type IndexKind int

const (
	// HashIndex supports equality lookups.
	HashIndex IndexKind = iota
	// OrderedIndex supports equality and range lookups.
	OrderedIndex
)

// String names the index kind.
func (k IndexKind) String() string {
	if k == OrderedIndex {
		return "ordered"
	}
	return "hash"
}

// TableInfo describes a table for the data registry.
type TableInfo struct {
	Name    string
	Schema  Schema
	Rows    int
	Indexes []IndexInfo
}

// IndexInfo describes one index for the data registry ("available indices",
// §V-D).
type IndexInfo struct {
	Name   string
	Column string
	Kind   IndexKind
}

// DB is an embedded relational database instance.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*table
	order  []string
	// vers maps lowercased table names to their schema version, bumped on
	// CREATE/DROP TABLE (column offsets change identity). Compiled plans
	// (compile.go) record the versions they resolved against and recompile
	// on mismatch; entries survive DROP so a recreated table never reuses a
	// version. CREATE INDEX does not bump: offsets are unaffected and the
	// access path is chosen at execution time.
	vers      map[string]uint64
	schemaSeq uint64
	// stmts amortizes lexing/parsing across repeated Query/Exec/Prepare
	// calls; DDL flushes the altered table's statements (see stmt.go).
	stmts *stmtCache
	// noCompile forces interpreted execution (see SetCompileEnabled);
	// noShape forces exact-text cache keys (see SetShapeCacheEnabled);
	// compiles counts plan compilations for CacheStats.
	noCompile atomic.Bool
	noShape   atomic.Bool
	compiles  atomic.Uint64

	writeMu sync.RWMutex
	onWrite []func(table string)

	// durable holds the optional write-ahead-log sink (durable.go) as a
	// durableBox; nil until SetDurable.
	durable atomic.Value
}

// bumpVersionLocked advances the schema version of the (lowercased) table
// key. Caller holds db.mu.
func (db *DB) bumpVersionLocked(key string) {
	db.schemaSeq++
	db.vers[key] = db.schemaSeq
}

// OnWrite registers fn, invoked after every successfully executed statement
// that mutates the named table — DML (INSERT/UPDATE/DELETE) and DDL alike,
// through Query/Exec, prepared statements and Run. The blueprint system
// wires this to the data registry's Touch, so a data change bumps the
// table's asset version and invalidates memoized step results that read it.
func (db *DB) OnWrite(fn func(table string)) {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	db.onWrite = append(db.onWrite, fn)
}

func (db *DB) notifyWrite(table string) {
	db.writeMu.RLock()
	hooks := make([]func(string), len(db.onWrite))
	copy(hooks, db.onWrite)
	db.writeMu.RUnlock()
	for _, fn := range hooks {
		fn(table)
	}
}

// NewDB creates an empty database.
func NewDB() *DB {
	return &DB{
		tables: make(map[string]*table),
		vers:   make(map[string]uint64),
		stmts:  newStmtCache(DefaultStmtCacheCapacity),
	}
}

// CreateTable registers a new table with the given schema.
func (db *DB) CreateTable(name string, schema Schema) error {
	key := strings.ToLower(name)
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[key]; ok {
		return fmt.Errorf("%w: %s", ErrTableExists, name)
	}
	if len(schema.Columns) == 0 {
		return errors.New("relational: table needs at least one column")
	}
	seen := map[string]bool{}
	for _, c := range schema.Columns {
		lc := strings.ToLower(c.Name)
		if seen[lc] {
			return fmt.Errorf("relational: duplicate column %q", c.Name)
		}
		seen[lc] = true
	}
	db.tables[key] = &table{name: name, schema: schema, indexes: make(map[string]*indexDef)}
	db.order = append(db.order, key)
	db.bumpVersionLocked(key)
	db.stmts.invalidateTable(name)
	return nil
}

// DropTable removes a table.
func (db *DB) DropTable(name string) error {
	key := strings.ToLower(name)
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[key]; !ok {
		return fmt.Errorf("%w: %s", ErrTableNotFound, name)
	}
	delete(db.tables, key)
	for i, k := range db.order {
		if k == key {
			db.order = append(db.order[:i], db.order[i+1:]...)
			break
		}
	}
	db.bumpVersionLocked(key)
	db.stmts.invalidateTable(name)
	return nil
}

func (db *DB) table(name string) (*table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrTableNotFound, name)
	}
	return t, nil
}

// Tables lists every table with its schema, row count and indexes, in
// creation order.
func (db *DB) Tables() []TableInfo {
	db.mu.RLock()
	keys := append([]string(nil), db.order...)
	db.mu.RUnlock()
	out := make([]TableInfo, 0, len(keys))
	for _, k := range keys {
		db.mu.RLock()
		t, ok := db.tables[k]
		db.mu.RUnlock()
		if !ok {
			continue
		}
		out = append(out, t.info())
	}
	return out
}

// Table returns info for one table.
func (db *DB) Table(name string) (TableInfo, error) {
	t, err := db.table(name)
	if err != nil {
		return TableInfo{}, err
	}
	return t.info(), nil
}

func (t *table) info() TableInfo {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ti := TableInfo{Name: t.name, Schema: t.schema, Rows: t.liveCnt}
	for _, ix := range t.indexes {
		ti.Indexes = append(ti.Indexes, IndexInfo{Name: ix.name, Column: ix.column, Kind: ix.kind})
	}
	return ti
}

// Insert appends a row, coercing value count and types against the schema.
func (db *DB) Insert(name string, row Row) error {
	t, err := db.table(name)
	if err != nil {
		return err
	}
	return t.insert(row)
}

func (t *table) insert(row Row) error {
	if len(row) != len(t.schema.Columns) {
		return fmt.Errorf("%w: got %d values for %d columns", ErrArity, len(row), len(t.schema.Columns))
	}
	coerced := make(Row, len(row))
	for i, v := range row {
		cv, err := coerce(v, t.schema.Columns[i].Type)
		if err != nil {
			return fmt.Errorf("column %q: %w", t.schema.Columns[i].Name, err)
		}
		coerced[i] = cv
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := len(t.rows)
	t.rows = append(t.rows, coerced)
	t.live = append(t.live, true)
	t.liveCnt++
	for _, ix := range t.indexes {
		ix.add(id, coerced[ix.col])
	}
	return nil
}

// coerce converts v to the column type where lossless, or errors.
func coerce(v Value, want Type) (Value, error) {
	if v.IsNull() {
		return Null, nil
	}
	switch want {
	case TInt:
		switch v.T {
		case TInt:
			return v, nil
		case TFloat:
			if v.F == float64(int64(v.F)) {
				return NewInt(int64(v.F)), nil
			}
		}
	case TFloat:
		switch v.T {
		case TFloat:
			return v, nil
		case TInt:
			return NewFloat(float64(v.I)), nil
		}
	case TString:
		if v.T == TString {
			return v, nil
		}
	case TBool:
		if v.T == TBool {
			return v, nil
		}
	}
	return Null, fmt.Errorf("%w: cannot store %s as %s", ErrTypeMismatch, v.T, want)
}

// CreateIndex builds a secondary index on table.column. Index names must be
// unique per table; only one index per column is kept (the most capable
// wins: ordered replaces hash).
func (db *DB) CreateIndex(idxName, tableName, column string, kind IndexKind) error {
	t, err := db.table(tableName)
	if err != nil {
		return err
	}
	col := t.schema.ColIndex(column)
	if col < 0 {
		return fmt.Errorf("%w: %s.%s", ErrColumnUnknown, tableName, column)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	key := strings.ToLower(column)
	if old, ok := t.indexes[key]; ok {
		if old.kind == OrderedIndex || old.kind == kind {
			return fmt.Errorf("%w: column %s already indexed (%s)", ErrIndexExists, column, old.kind)
		}
	}
	ix := &indexDef{name: idxName, column: column, col: col, kind: kind}
	if kind == HashIndex {
		ix.hash = make(map[string][]int)
	} else {
		ix.order = newOrderedIndex()
	}
	for id, row := range t.rows {
		if t.live[id] {
			ix.add(id, row[ix.col])
		}
	}
	t.indexes[key] = ix
	db.stmts.invalidateTable(tableName)
	return nil
}

func (ix *indexDef) add(id int, v Value) {
	if v.IsNull() {
		return
	}
	if ix.kind == HashIndex {
		k := v.Key()
		ix.hash[k] = append(ix.hash[k], id)
		return
	}
	ix.order.add(v, id)
}

func (ix *indexDef) remove(id int, v Value) {
	if v.IsNull() {
		return
	}
	if ix.kind == HashIndex {
		k := v.Key()
		ids := ix.hash[k]
		for i, x := range ids {
			if x == id {
				ix.hash[k] = append(ids[:i], ids[i+1:]...)
				break
			}
		}
		return
	}
	ix.order.remove(v, id)
}
