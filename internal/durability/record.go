package durability

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Log records and snapshot sections share one frame format:
//
//	[u32 length][u32 CRC-32C][u8 subsystem id][payload ...]
//
// length counts the id byte plus the payload; the CRC covers the same
// bytes. The frame is self-validating: recovery stops (and truncates) at
// the first frame whose header is short, whose length is implausible, or
// whose CRC does not match — the torn-tail contract after a crash.
const (
	frameHeaderBytes = 8
	// maxFrameBytes bounds a single record/section; anything larger in a
	// header is treated as corruption rather than attempted allocation.
	maxFrameBytes = 256 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// errTorn marks an incomplete or corrupt trailing frame. It is internal:
// recovery converts it into truncation, never into a caller-visible error.
var errTorn = errors.New("durability: torn frame")

// appendFrame appends one framed record to buf and returns the extended
// slice (the writer reuses one scratch buffer across appends).
func appendFrame(buf []byte, id uint8, payload []byte) []byte {
	n := len(payload) + 1
	var hdr [frameHeaderBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(n))
	crc := crc32.Update(0, crcTable, []byte{id})
	crc = crc32.Update(crc, crcTable, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	buf = append(buf, hdr[:]...)
	buf = append(buf, id)
	buf = append(buf, payload...)
	return buf
}

// frameReader reads frames from a byte stream, tracking the offset of the
// end of the last fully validated frame so a torn tail can be truncated.
type frameReader struct {
	r    io.Reader
	buf  []byte // reused payload buffer; contents valid until the next read
	good int64  // offset just past the last valid frame
}

// next returns the next frame's id and payload. The payload slice is only
// valid until the following call. It returns io.EOF at a clean end and
// errTorn for a short or corrupt trailing frame.
func (fr *frameReader) next() (uint8, []byte, error) {
	var hdr [frameHeaderBytes]byte
	n, err := io.ReadFull(fr.r, hdr[:])
	if n == 0 && (errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)) {
		return 0, nil, io.EOF
	}
	if err != nil {
		return 0, nil, errTorn
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	if length == 0 || length > maxFrameBytes {
		return 0, nil, errTorn
	}
	if cap(fr.buf) < int(length) {
		fr.buf = make([]byte, length)
	}
	body := fr.buf[:length]
	if _, err := io.ReadFull(fr.r, body); err != nil {
		return 0, nil, errTorn
	}
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return 0, nil, errTorn
	}
	fr.good += int64(frameHeaderBytes) + int64(length)
	return body[0], body[1:], nil
}

// ---- binary encoding helpers shared by subsystem record formats ----

// AppendUvarint appends v as an unsigned varint.
func AppendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// AppendVarint appends v as a zig-zag signed varint.
func AppendVarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

// AppendBytes appends a length-prefixed byte string.
func AppendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// AppendString appends a length-prefixed string.
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendFloat appends an IEEE-754 float64 (8 bytes, little endian).
func AppendFloat(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

// Dec decodes the encodings produced by the Append* helpers. The first
// malformed field latches Err; subsequent reads return zero values, so
// callers may decode a full record and check Err once.
type Dec struct {
	b   []byte
	err error
}

// NewDec returns a decoder over b. The decoder aliases b; values returned
// by Bytes share its backing array.
func NewDec(b []byte) *Dec { return &Dec{b: b} }

// Err reports the first decoding error, if any.
func (d *Dec) Err() error { return d.err }

// Len reports the number of undecoded bytes.
func (d *Dec) Len() int { return len(d.b) }

func (d *Dec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("durability: truncated or malformed record")
	}
}

// Uvarint decodes an unsigned varint.
func (d *Dec) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

// Varint decodes a zig-zag signed varint.
func (d *Dec) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

// Bytes decodes a length-prefixed byte string (a view into the input).
func (d *Dec) Bytes() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if uint64(len(d.b)) < n {
		d.fail()
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out
}

// String decodes a length-prefixed string (copied out of the input).
func (d *Dec) String() string { return string(d.Bytes()) }

// Float decodes an IEEE-754 float64.
func (d *Dec) Float() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v
}

// Byte decodes a single byte.
func (d *Dec) Byte() uint8 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 1 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}
