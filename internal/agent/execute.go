package agent

import (
	"time"

	"blueprint/internal/streams"
)

// Execute publishes an EXECUTE_AGENT directive on the session's control
// stream — the centralized activation path used by the task coordinator
// (§V-H). Outputs will appear on replyStream (or the agent's default output
// stream when empty), and a DONE/ERROR control report follows, carrying
// invocationID.
func Execute(store *streams.Store, session, agentName string, inputs map[string]any, replyStream, invocationID string) error {
	return ExecuteTraced(store, session, agentName, inputs, replyStream, invocationID, "")
}

// ExecuteTraced is Execute with a trace parent: traceParent (an
// obs.Span.Token, may be empty) rides the directive as the "trace_parent"
// arg, so the consuming runtime can resume the caller's span tree across
// the stream boundary.
func ExecuteTraced(store *streams.Store, session, agentName string, inputs map[string]any, replyStream, invocationID, traceParent string) error {
	return ExecuteDeadline(store, session, agentName, inputs, replyStream, invocationID, traceParent, time.Time{})
}

// ExecuteDeadline is ExecuteTraced with a completion deadline: a non-zero
// deadline rides the directive as "deadline_ms" (absolute Unix
// milliseconds — JSON-safe across the stream/durability boundary), and the
// consuming runtime bounds the processor at min(its own timeout, time until
// the deadline). The scheduler derives it from the plan's remaining latency
// budget.
func ExecuteDeadline(store *streams.Store, session, agentName string, inputs map[string]any, replyStream, invocationID, traceParent string, deadline time.Time) error {
	if _, err := store.EnsureStream(ControlStream(session), streams.StreamInfo{Session: session}); err != nil {
		return err
	}
	args := map[string]any{"inputs": inputs}
	if replyStream != "" {
		args["reply_stream"] = replyStream
	}
	if invocationID != "" {
		args["invocation_id"] = invocationID
	}
	if traceParent != "" {
		args["trace_parent"] = traceParent
	}
	if !deadline.IsZero() {
		args["deadline_ms"] = float64(deadline.UnixMilli())
	}
	_, err := store.Append(streams.Message{
		Stream: ControlStream(session),
		Kind:   streams.Control,
		Sender: "coordinator",
		Directive: &streams.Directive{
			Op:    streams.OpExecuteAgent,
			Agent: agentName,
			Args:  args,
		},
	})
	return err
}

// AwaitDone blocks until a DONE or ERROR report for invocationID arrives on
// the session control stream, scanning history first so reports that raced
// ahead of the subscription are not missed. It returns the report directive.
func AwaitDone(store *streams.Store, session, invocationID string) *streams.Directive {
	sub := store.Subscribe(streams.Filter{
		Streams: []string{ControlStream(session)},
		Kinds:   []streams.Kind{streams.Control},
	}, true)
	defer sub.Cancel()
	for msg := range sub.C() {
		d := msg.Directive
		if d == nil || (d.Op != OpAgentDone && d.Op != OpAgentError) {
			continue
		}
		if id, _ := d.Args["invocation_id"].(string); id == invocationID {
			return d
		}
	}
	return nil
}
