package cluster

import (
	"context"
	"fmt"
	"testing"

	"blueprint/internal/agent"
	"blueprint/internal/budget"
	"blueprint/internal/coordinator"
	"blueprint/internal/planner"
	"blueprint/internal/registry"
	"blueprint/internal/streams"
)

// TestClusterServesCoordinatorPlans ties Fig. 2 to Fig. 6: agents deployed
// through the cluster simulator serve plans executed by the task
// coordinator, and keep serving after a crash + reconcile.
func TestClusterServesCoordinatorPlans(t *testing.T) {
	store := streams.NewStore()
	t.Cleanup(func() { store.Close() })
	reg := registry.NewAgentRegistry()
	specs := []registry.AgentSpec{
		{
			Name: "STEP_A", Description: "first step producing a value",
			Inputs:     []registry.ParamSpec{{Name: "IN", Type: "text"}},
			Outputs:    []registry.ParamSpec{{Name: "MID", Type: "text"}},
			Deployment: registry.Deployment{Resource: "cpu", Workers: 1},
		},
		{
			Name: "STEP_B", Description: "second step consuming the value",
			Inputs:     []registry.ParamSpec{{Name: "MID", Type: "text"}},
			Outputs:    []registry.ParamSpec{{Name: "OUT", Type: "text"}},
			Deployment: registry.Deployment{Resource: "cpu", Workers: 1},
		},
	}
	for _, s := range specs {
		if err := reg.Register(s); err != nil {
			t.Fatal(err)
		}
	}
	f := agent.NewFactory(reg)
	f.RegisterConstructor("STEP_A", func(registry.AgentSpec) agent.Processor {
		return func(ctx context.Context, inv agent.Invocation) (agent.Outputs, error) {
			return agent.Outputs{Values: map[string]any{"MID": fmt.Sprintf("A(%v)", inv.Inputs["IN"])}}, nil
		}
	})
	f.RegisterConstructor("STEP_B", func(registry.AgentSpec) agent.Processor {
		return func(ctx context.Context, inv agent.Invocation) (agent.Outputs, error) {
			return agent.Outputs{Values: map[string]any{"OUT": fmt.Sprintf("B(%v)", inv.Inputs["MID"])}}, nil
		}
	})

	const session = "session:integration"
	c := New(store, f, session)
	t.Cleanup(c.Shutdown)
	if err := c.AddNode("n1", "cpu", 4); err != nil {
		t.Fatal(err)
	}
	ctrA, err := c.Deploy("STEP_A")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Deploy("STEP_B"); err != nil {
		t.Fatal(err)
	}

	coord := coordinator.New(store, reg, nil, nil, coordinator.Options{})
	plan := &planner.Plan{
		ID: "p-int", Utterance: "go", Intent: "x",
		Steps: []planner.Step{
			{ID: "s1", Agent: "STEP_A", Task: "first step",
				Bindings: map[string]planner.Binding{"IN": {FromUserText: true}}},
			{ID: "s2", Agent: "STEP_B", Task: "second step",
				Bindings: map[string]planner.Binding{"MID": {FromStep: "s1", FromParam: "MID"}}},
		},
	}
	res, err := coord.ExecutePlan(session, plan, budget.New(budget.Limits{}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Final["OUT"] != "B(A(go))" {
		t.Fatalf("final = %v", res.Final)
	}

	// Crash STEP_A's container; after reconcile the same plan runs again.
	if err := c.Kill(ctrA.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Reconcile(); err != nil {
		t.Fatal(err)
	}
	plan.ID = "p-int-2" // fresh invocation ids / reply streams
	res, err = coord.ExecutePlan(session, plan, budget.New(budget.Limits{}))
	if err != nil {
		t.Fatalf("post-recovery execution failed: %v", err)
	}
	if res.Final["OUT"] != "B(A(go))" {
		t.Fatalf("post-recovery final = %v", res.Final)
	}
}
