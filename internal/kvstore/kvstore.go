// Package kvstore implements a sharded in-memory key-value store with
// optional TTL expiry and compare-and-swap.
//
// In the blueprint architecture it plays the role of the enterprise's
// key-value stores (§V-D) and is used for session state and cached agent
// outputs. Time is injected so expiry is deterministic under test.
package kvstore

import (
	"errors"
	"hash/fnv"
	"sort"
	"sync"
	"time"
)

// ErrCASMismatch is returned by CompareAndSwap when the current value does
// not match the expected one.
var ErrCASMismatch = errors.New("kvstore: compare-and-swap mismatch")

const numShards = 16

type entry struct {
	value    any
	expireAt time.Time // zero = never
	version  int64
}

type shard struct {
	mu   sync.RWMutex
	data map[string]entry
}

// Store is a sharded KV store.
type Store struct {
	shards [numShards]*shard
	now    func() time.Time
}

// NewStore creates a store using the wall clock.
func NewStore() *Store {
	return NewStoreWithClock(time.Now)
}

// NewStoreWithClock creates a store with an injected clock (tests).
func NewStoreWithClock(now func() time.Time) *Store {
	s := &Store{now: now}
	for i := range s.shards {
		s.shards[i] = &shard{data: make(map[string]entry)}
	}
	return s
}

func (s *Store) shard(key string) *shard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return s.shards[h.Sum32()%numShards]
}

// Set stores value under key with no expiry.
func (s *Store) Set(key string, value any) {
	s.SetTTL(key, value, 0)
}

// SetTTL stores value under key, expiring after ttl (0 = never).
func (s *Store) SetTTL(key string, value any, ttl time.Duration) {
	sh := s.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.data[key]
	e.value = value
	e.version++
	if ttl > 0 {
		e.expireAt = s.now().Add(ttl)
	} else {
		e.expireAt = time.Time{}
	}
	sh.data[key] = e
}

// Get returns the value under key and whether it exists (and is unexpired).
func (s *Store) Get(key string) (any, bool) {
	sh := s.shard(key)
	sh.mu.RLock()
	e, ok := sh.data[key]
	sh.mu.RUnlock()
	if !ok {
		return nil, false
	}
	if !e.expireAt.IsZero() && !s.now().Before(e.expireAt) {
		sh.mu.Lock()
		// Re-check under write lock before reaping.
		if cur, ok2 := sh.data[key]; ok2 && !cur.expireAt.IsZero() && !s.now().Before(cur.expireAt) {
			delete(sh.data, key)
		}
		sh.mu.Unlock()
		return nil, false
	}
	return e.value, true
}

// GetString returns a string value, or "" if absent or not a string.
func (s *Store) GetString(key string) string {
	v, ok := s.Get(key)
	if !ok {
		return ""
	}
	str, _ := v.(string)
	return str
}

// Delete removes key; deleting an absent key is a no-op.
func (s *Store) Delete(key string) {
	sh := s.shard(key)
	sh.mu.Lock()
	delete(sh.data, key)
	sh.mu.Unlock()
}

// CompareAndSwap sets key to next only if the current value equals expected
// (comparing with ==; values must be comparable). A missing key matches
// expected == nil.
func (s *Store) CompareAndSwap(key string, expected, next any) error {
	sh := s.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.data[key]
	cur := any(nil)
	if ok && (e.expireAt.IsZero() || s.now().Before(e.expireAt)) {
		cur = e.value
	}
	if cur != expected {
		return ErrCASMismatch
	}
	e.value = next
	e.version++
	e.expireAt = time.Time{}
	sh.data[key] = e
	return nil
}

// Keys returns all live keys with the given prefix, sorted.
func (s *Store) Keys(prefix string) []string {
	var out []string
	now := s.now()
	for _, sh := range s.shards {
		sh.mu.RLock()
		for k, e := range sh.data {
			if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
				if e.expireAt.IsZero() || now.Before(e.expireAt) {
					out = append(out, k)
				}
			}
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// Len reports the number of live keys.
func (s *Store) Len() int {
	n := 0
	now := s.now()
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, e := range sh.data {
			if e.expireAt.IsZero() || now.Before(e.expireAt) {
				n++
			}
		}
		sh.mu.RUnlock()
	}
	return n
}
