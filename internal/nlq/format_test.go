package nlq

import "testing"

func TestFormatValue(t *testing.T) {
	cases := []struct {
		in   any
		want string
	}{
		{185333.33333333334, "185333.33"},
		{165666.66666666666, "165666.67"},
		{148750.0, "148750"},
		{float32(2.5), "2.50"},
		{int64(42), "42"},
		{"Oakland", "Oakland"},
		{true, "true"},
	}
	for _, c := range cases {
		if got := FormatValue(c.in); got != c.want {
			t.Errorf("FormatValue(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFormatRow(t *testing.T) {
	row := map[string]any{
		"city":       "San Diego",
		"avg_salary": 185333.33333333334,
		"n":          int64(3),
	}
	want := "avg_salary: 185333.33, city: San Diego, n: 3"
	if got := FormatRow(row); got != want {
		t.Errorf("FormatRow = %q, want %q", got, want)
	}
	if got := FormatRow(nil); got != "" {
		t.Errorf("FormatRow(nil) = %q, want empty", got)
	}
}
