package relational

import (
	"fmt"
	"testing"
)

func benchDB(b *testing.B, rows int, withIndex bool) *DB {
	b.Helper()
	db := NewDB()
	if _, err := db.Exec(`CREATE TABLE jobs (id INT, title TEXT, city TEXT, salary INT)`); err != nil {
		b.Fatal(err)
	}
	if withIndex {
		if _, err := db.Exec(`CREATE INDEX ic ON jobs (city)`); err != nil {
			b.Fatal(err)
		}
		if _, err := db.Exec(`CREATE ORDERED INDEX isal ON jobs (salary)`); err != nil {
			b.Fatal(err)
		}
	}
	cities := []string{"San Francisco", "Oakland", "Seattle", "New York", "Austin"}
	titles := []string{"Data Scientist", "ML Engineer", "Analyst"}
	for i := 0; i < rows; i++ {
		if _, err := db.Exec(`INSERT INTO jobs VALUES (?, ?, ?, ?)`,
			i, titles[i%len(titles)], cities[i%len(cities)], 90000+(i%160)*1000); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

func BenchmarkInsert(b *testing.B) {
	db := NewDB()
	if _, err := db.Exec(`CREATE TABLE t (a INT, s TEXT)`); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(`INSERT INTO t VALUES (?, ?)`, i, "payload"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPointQuerySeqScan(b *testing.B) {
	db := benchDB(b, 5000, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(`SELECT id FROM jobs WHERE city = 'Oakland' LIMIT 5`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPointQueryHashIndex(b *testing.B) {
	db := benchDB(b, 5000, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(`SELECT id FROM jobs WHERE city = 'Oakland' LIMIT 5`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRangeQueryOrderedIndex(b *testing.B) {
	db := benchDB(b, 5000, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(`SELECT id FROM jobs WHERE salary BETWEEN 200000 AND 210000`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGroupByAggregate(b *testing.B) {
	db := benchDB(b, 5000, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(`SELECT city, AVG(salary) FROM jobs GROUP BY city`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashJoin(b *testing.B) {
	db := benchDB(b, 2000, false)
	if _, err := db.Exec(`CREATE TABLE companies (id INT, name TEXT)`); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := db.Exec(`INSERT INTO companies VALUES (?, ?)`, i, fmt.Sprintf("co%d", i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(`SELECT j.title, c.name FROM jobs j JOIN companies c ON j.id = c.id`); err != nil {
			b.Fatal(err)
		}
	}
}

// benchIDIndexedDB builds a jobs table with a hash index on id so point
// queries isolate the parse-versus-execute split the statement cache
// amortizes.
func benchIDIndexedDB(b *testing.B, rows int) *DB {
	b.Helper()
	db := benchDB(b, rows, false)
	if _, err := db.Exec(`CREATE INDEX iid ON jobs (id)`); err != nil {
		b.Fatal(err)
	}
	return db
}

const pointQuery = `SELECT title FROM jobs WHERE id = ? LIMIT 1`

// BenchmarkPointQueryUncached is the re-parse baseline: every call lexes and
// parses the SQL text again (statement cache disabled).
func BenchmarkPointQueryUncached(b *testing.B) {
	db := benchIDIndexedDB(b, 5000)
	db.SetStmtCacheCapacity(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(pointQuery, i%5000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPointQueryCached exercises the transparent statement cache that
// Query consults by default.
func BenchmarkPointQueryCached(b *testing.B) {
	db := benchIDIndexedDB(b, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(pointQuery, i%5000); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	stats := db.CacheStats()
	b.ReportMetric(stats.HitRate()*100, "hit%")
}

// BenchmarkPointQueryPrepared uses the explicit prepared-statement handle:
// parse once, execute b.N times.
func BenchmarkPointQueryPrepared(b *testing.B) {
	db := benchIDIndexedDB(b, 5000)
	st, err := db.Prepare(pointQuery)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Query(i % 5000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInsertUncached is the re-parse baseline for BenchmarkInsert
// (which runs with the default statement cache): together they measure the
// DML write path with and without parse amortization.
func BenchmarkInsertUncached(b *testing.B) {
	db := NewDB()
	if _, err := db.Exec(`CREATE TABLE t (a INT, s TEXT)`); err != nil {
		b.Fatal(err)
	}
	db.SetStmtCacheCapacity(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(`INSERT INTO t VALUES (?, ?)`, i, "payload"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseSelect(b *testing.B) {
	const q = `SELECT city, COUNT(*) AS n, AVG(salary) FROM jobs WHERE salary > 100000 AND title LIKE '%data%' GROUP BY city ORDER BY n DESC LIMIT 10`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- compiled vs interpreted executor benchmarks ----
//
// The same statements, same data, same statement cache — the only variable
// is SetCompileEnabled, so the delta is the cost of per-row column
// resolution, AST dispatch and stringly hash keys that prepare-time
// compilation removes. Run with -benchmem: the compiled variants should
// show both lower ns/op and lower allocs/op.

const benchFilteredScan = `SELECT id, title, salary FROM jobs WHERE id >= ? AND title LIKE '%engineer%'`
const benchGroupBy = `SELECT city, COUNT(*) AS n, AVG(salary) AS avg_sal FROM jobs GROUP BY city`

func benchSelect(b *testing.B, sql string, compiled bool, args ...any) {
	b.Helper()
	db := benchDB(b, 5000, false)
	db.SetCompileEnabled(compiled)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(sql, args...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFilteredScanInterpreted(b *testing.B) {
	benchSelect(b, benchFilteredScan, false, 2500)
}

func BenchmarkFilteredScanCompiled(b *testing.B) {
	benchSelect(b, benchFilteredScan, true, 2500)
}

func BenchmarkGroupByInterpreted(b *testing.B) {
	benchSelect(b, benchGroupBy, false)
}

func BenchmarkGroupByCompiled(b *testing.B) {
	benchSelect(b, benchGroupBy, true)
}

func benchJoin3DB(b *testing.B) *DB {
	b.Helper()
	db := benchDB(b, 2000, false)
	if _, err := db.Exec(`CREATE TABLE companies (id INT, name TEXT)`); err != nil {
		b.Fatal(err)
	}
	if _, err := db.Exec(`CREATE TABLE regions (name TEXT, region TEXT)`); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := db.Exec(`INSERT INTO companies VALUES (?, ?)`, i, fmt.Sprintf("co%d", i)); err != nil {
			b.Fatal(err)
		}
		if _, err := db.Exec(`INSERT INTO regions VALUES (?, ?)`, fmt.Sprintf("co%d", i), "west"); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

const benchJoin3 = `SELECT j.title, c.name, r.region FROM jobs j JOIN companies c ON j.id = c.id JOIN regions r ON c.name = r.name WHERE j.salary > ?`

func BenchmarkJoin3WayInterpreted(b *testing.B) {
	db := benchJoin3DB(b)
	db.SetCompileEnabled(false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(benchJoin3, 100000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJoin3WayCompiled(b *testing.B) {
	db := benchJoin3DB(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(benchJoin3, 100000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTopKOrderByLimit isolates the bounded-heap ORDER BY + LIMIT
// against the interpreted full sort.
func BenchmarkTopKOrderByLimitInterpreted(b *testing.B) {
	benchSelect(b, `SELECT id, title FROM jobs ORDER BY salary DESC LIMIT 10`, false)
}

func BenchmarkTopKOrderByLimitCompiled(b *testing.B) {
	benchSelect(b, `SELECT id, title FROM jobs ORDER BY salary DESC LIMIT 10`, true)
}

// ---- tokenizer / fingerprint / shape-cache benchmarks ----

const benchTokenizeStmt = `SELECT id, title, salary FROM jobs WHERE city = 'Oakland' AND salary >= 95000 OR id IN (1, 2, 3) ORDER BY salary DESC LIMIT 10`

// BenchmarkTokenize sweeps one statement through the streaming tokenizer.
// The acceptance bar is 0 allocs/op: token texts are substrings of the
// source or interned keyword spellings.
func BenchmarkTokenize(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tz := newTokenizer(benchTokenizeStmt)
		for {
			tok, err := tz.next()
			if err != nil {
				b.Fatal(err)
			}
			if tok.kind == tokEOF {
				break
			}
		}
	}
}

// BenchmarkFingerprint produces the shape key plus extracted literals for one
// statement. With pooled scratch the steady state is 0 allocs/op (amortized
// O(1) per statement).
func BenchmarkFingerprint(b *testing.B) {
	fp := fpScratch.Get().(*fingerprint)
	defer fpScratch.Put(fp)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !fingerprintStmt(fp, benchTokenizeStmt) {
			b.Fatal("fingerprint bailed")
		}
	}
}

// BenchmarkPointQueryShapeKeyed sends literal-inlined texts (a different
// literal every call, as NLQ-generated SQL does) through the shape-keyed
// cache: one parse serves every variant.
func BenchmarkPointQueryShapeKeyed(b *testing.B) {
	db := benchIDIndexedDB(b, 5000)
	queries := make([]string, 512)
	for i := range queries {
		queries[i] = fmt.Sprintf(`SELECT title FROM jobs WHERE id = %d LIMIT 1`, i%5000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(db.CacheStats().HitRate()*100, "hit%")
}

// BenchmarkPointQueryExactKeyed is the same literal-inlined workload with
// shape keying disabled: every distinct text is a cache miss (the pre-shape
// behavior).
func BenchmarkPointQueryExactKeyed(b *testing.B) {
	db := benchIDIndexedDB(b, 5000)
	db.SetShapeCacheEnabled(false)
	queries := make([]string, 512)
	for i := range queries {
		queries[i] = fmt.Sprintf(`SELECT title FROM jobs WHERE id = %d LIMIT 1`, i%5000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
}
