package resilience

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"
	"sync"
	"time"

	"blueprint/internal/obs"
)

// Process-wide admission instruments.
var (
	mGovAdmitted      = obs.Default.Counter("blueprint_governor_admitted_total", "asks admitted by the overload governor")
	mGovShed          = obs.Default.Counter("blueprint_governor_shed_total", "asks shed by the overload governor (429)")
	mGovTenantShed    = obs.Default.Counter("blueprint_governor_tenant_shed_total", "asks shed because the tenant exceeded its fair share under contention")
	mGovQueueTimeouts = obs.Default.Counter("blueprint_governor_queue_timeouts_total", "queued asks shed after waiting past the queue timeout")
	mGovDegraded      = obs.Default.Counter("blueprint_degraded_answers_total", "asks answered from stale memo entries instead of execution")
)

// shedEvent records one shed decision in the event log, carrying the
// tenant, the reason and the ask's trace id so a 429 response correlates
// with the flight recorder.
func shedEvent(ctx context.Context, tenant, reason string, queued int) {
	if !obs.Events.On(obs.LevelWarn) {
		return
	}
	obs.Events.Append(obs.Event{
		Level: obs.LevelWarn, Component: "governor", Kind: "shed",
		Trace: obs.TraceIDFrom(ctx),
		Attrs: []obs.Attr{
			{Key: "tenant", Value: tenant},
			{Key: "reason", Value: reason},
			{Key: "queued", Value: strconv.Itoa(queued)},
		},
	})
}

// ErrOverloaded reports an ask shed by the governor. blueprintd maps it to
// HTTP 429 with a Retry-After header.
var ErrOverloaded = errors.New("resilience: overloaded, request shed")

// OverloadError carries the advisory retry delay of one shed decision.
type OverloadError struct {
	// RetryAfter is the advised client backoff.
	RetryAfter time.Duration
	// Reason distinguishes queue-full, queue-timeout and tenant-share sheds.
	Reason string
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("%v (%s; retry after %s)", ErrOverloaded, e.Reason, e.RetryAfter)
}

// Unwrap makes errors.Is(err, ErrOverloaded) hold.
func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// GovernorConfig bounds the daemon's concurrent ask processing. The zero
// value disables governing entirely (every Admit succeeds immediately).
type GovernorConfig struct {
	// MaxConcurrent is the global in-flight ask bound (0 = ungoverned).
	MaxConcurrent int
	// MaxQueue bounds asks waiting for a slot; arrivals beyond it shed
	// immediately (default 2x MaxConcurrent).
	MaxQueue int
	// QueueTimeout sheds a queued ask that waited this long (default 1s) —
	// under sustained overload a deep queue only converts latency into
	// missed deadlines, so waiting is bounded too.
	QueueTimeout time.Duration
	// TenantShare caps, under contention, the fraction of MaxConcurrent one
	// tenant may hold (default 0.5; clamped to at least one slot). The cap
	// binds only while others are waiting, so a lone tenant still uses the
	// whole capacity.
	TenantShare float64
	// RetryAfter is the advisory backoff attached to shed decisions
	// (default 1s).
	RetryAfter time.Duration
}

func (c GovernorConfig) withDefaults() GovernorConfig {
	if c.MaxQueue <= 0 {
		c.MaxQueue = 2 * c.MaxConcurrent
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = time.Second
	}
	if c.TenantShare <= 0 || c.TenantShare > 1 {
		c.TenantShare = 0.5
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// GovernorStats counts admission outcomes.
type GovernorStats struct {
	Admitted      int
	Shed          int
	TenantShed    int
	QueueTimeouts int
	InFlight      int
	Queued        int
	PeakInFlight  int
}

// waiter is one queued admission request.
type waiter struct {
	tenant  string
	granted chan struct{} // closed by Release's handoff
}

// Governor is the global concurrency/cost governor generalizing the budget's
// Reserve/Commit admission to the whole daemon: a bounded in-flight slot
// pool with a bounded FIFO wait queue, per-tenant fair shares under
// contention, and load shedding (ErrOverloaded) when either bound is hit.
// A nil *Governor admits everything (the ungoverned library default).
type Governor struct {
	mu    sync.Mutex
	cfg   GovernorConfig
	share int // per-tenant slot cap under contention

	inflight  int
	perTenant map[string]int
	queue     *list.List // of *waiter
	stats     GovernorStats
}

// NewGovernor creates a governor; a config with MaxConcurrent <= 0 returns
// nil (ungoverned).
func NewGovernor(cfg GovernorConfig) *Governor {
	if cfg.MaxConcurrent <= 0 {
		return nil
	}
	cfg = cfg.withDefaults()
	share := int(math.Ceil(float64(cfg.MaxConcurrent) * cfg.TenantShare))
	if share < 1 {
		share = 1
	}
	return &Governor{cfg: cfg, share: share, perTenant: map[string]int{}, queue: list.New()}
}

// Admit claims one ask slot for tenant, waiting (bounded) when the daemon is
// at capacity. On success it returns the release function that must be
// called exactly once when the ask completes. On shed it returns an
// *OverloadError. A nil governor admits immediately with a no-op release.
func (g *Governor) Admit(ctx context.Context, tenant string) (func(), error) {
	if g == nil {
		return func() {}, nil
	}
	g.mu.Lock()
	// Fast path: capacity free and nobody queued ahead. The tenant-share
	// cap binds only under contention (a waiter exists), so a lone tenant
	// may fill the whole pool.
	if g.inflight < g.cfg.MaxConcurrent && g.queue.Len() == 0 {
		g.admitLocked(tenant)
		g.mu.Unlock()
		g.admitEvent(ctx, tenant, false)
		return func() { g.release(tenant) }, nil
	}
	// Contended. A tenant already holding its fair share sheds immediately
	// rather than queueing — its queued ask could only displace other
	// tenants' slots.
	if g.perTenant[tenant] >= g.share {
		g.stats.Shed++
		g.stats.TenantShed++
		mGovShed.Inc()
		mGovTenantShed.Inc()
		retry := g.cfg.RetryAfter
		queued := g.queue.Len()
		g.mu.Unlock()
		shedEvent(ctx, tenant, "tenant over fair share", queued)
		return nil, &OverloadError{RetryAfter: retry, Reason: "tenant over fair share"}
	}
	if g.queue.Len() >= g.cfg.MaxQueue {
		g.stats.Shed++
		mGovShed.Inc()
		retry := g.cfg.RetryAfter
		queued := g.queue.Len()
		g.mu.Unlock()
		shedEvent(ctx, tenant, "queue full", queued)
		return nil, &OverloadError{RetryAfter: retry, Reason: "queue full"}
	}
	w := &waiter{tenant: tenant, granted: make(chan struct{})}
	el := g.queue.PushBack(w)
	depth := g.queue.Len()
	g.stats.Queued = depth
	g.mu.Unlock()
	if obs.Events.On(obs.LevelInfo) {
		obs.Events.Append(obs.Event{
			Level: obs.LevelInfo, Component: "governor", Kind: "queue",
			Trace: obs.TraceIDFrom(ctx),
			Attrs: []obs.Attr{
				{Key: "tenant", Value: tenant},
				{Key: "depth", Value: strconv.Itoa(depth)},
			},
		})
	}

	t := time.NewTimer(g.cfg.QueueTimeout)
	defer t.Stop()
	select {
	case <-w.granted:
		g.admitEvent(ctx, tenant, true)
		return func() { g.release(tenant) }, nil
	case <-t.C:
	case <-ctx.Done():
	}
	// Timed out or cancelled — but the handoff may have raced us: once
	// granted is closed the slot is ours and must be returned, not shed.
	g.mu.Lock()
	select {
	case <-w.granted:
		g.mu.Unlock()
		g.admitEvent(ctx, tenant, true)
		return func() { g.release(tenant) }, nil
	default:
	}
	g.queue.Remove(el)
	g.stats.Queued = g.queue.Len()
	g.stats.Shed++
	g.stats.QueueTimeouts++
	mGovShed.Inc()
	mGovQueueTimeouts.Inc()
	retry := g.cfg.RetryAfter
	queued := g.queue.Len()
	g.mu.Unlock()
	reason := "queue timeout"
	if ctx.Err() != nil {
		reason = "cancelled while queued"
	}
	shedEvent(ctx, tenant, reason, queued)
	return nil, &OverloadError{RetryAfter: retry, Reason: reason}
}

// admitEvent records one admission at debug level (the governor's steady
// state; operators raise the log to info/warn to keep only transitions).
func (g *Governor) admitEvent(ctx context.Context, tenant string, waited bool) {
	if !obs.Events.On(obs.LevelDebug) {
		return
	}
	obs.Events.Append(obs.Event{
		Level: obs.LevelDebug, Component: "governor", Kind: "admit",
		Trace: obs.TraceIDFrom(ctx),
		Attrs: []obs.Attr{
			{Key: "tenant", Value: tenant},
			{Key: "waited", Value: strconv.FormatBool(waited)},
		},
	})
}

// admitLocked books one slot for tenant.
func (g *Governor) admitLocked(tenant string) {
	g.inflight++
	g.perTenant[tenant]++
	if g.inflight > g.stats.PeakInFlight {
		g.stats.PeakInFlight = g.inflight
	}
	g.stats.Admitted++
	g.stats.InFlight = g.inflight
	mGovAdmitted.Inc()
}

// release returns tenant's slot and hands it to the first eligible waiter:
// FIFO order, skipping tenants at their share cap (they are reconsidered as
// earlier holders drain). If every waiter is capped the scan falls back to
// the head, keeping the pool work-conserving.
func (g *Governor) release(tenant string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.inflight--
	if g.perTenant[tenant] <= 1 {
		delete(g.perTenant, tenant)
	} else {
		g.perTenant[tenant]--
	}
	for g.inflight < g.cfg.MaxConcurrent && g.queue.Len() > 0 {
		var pick *list.Element
		for el := g.queue.Front(); el != nil; el = el.Next() {
			if g.perTenant[el.Value.(*waiter).tenant] < g.share {
				pick = el
				break
			}
		}
		if pick == nil {
			pick = g.queue.Front()
		}
		w := pick.Value.(*waiter)
		g.queue.Remove(pick)
		g.admitLocked(w.tenant)
		close(w.granted)
	}
	g.stats.InFlight = g.inflight
	g.stats.Queued = g.queue.Len()
}

// Stats snapshots the admission counters. Safe on nil.
func (g *Governor) Stats() GovernorStats {
	if g == nil {
		return GovernorStats{}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	st := g.stats
	st.InFlight = g.inflight
	st.Queued = g.queue.Len()
	return st
}

// Saturated reports whether the governor is at capacity with asks waiting —
// the daemon-level brownout signal consulted by the degradation path. Safe
// on nil (never saturated).
func (g *Governor) Saturated() bool {
	if g == nil {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inflight >= g.cfg.MaxConcurrent && g.queue.Len() > 0
}

// RetryAfter is the advisory backoff for shed responses. Safe on nil.
func (g *Governor) RetryAfter() time.Duration {
	if g == nil {
		return time.Second
	}
	return g.cfg.RetryAfter
}

// CountDegraded counts one stale-memo degraded answer (kept here so the
// governor owns the full admitted/shed/degraded ledger the A11 experiment
// reads). Safe on nil.
func (g *Governor) CountDegraded() { mGovDegraded.Inc() }
