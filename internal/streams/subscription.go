package streams

import "sync"

// Subscription delivers matching messages to a consumer. Messages are queued
// without bound internally and drained into C by a dedicated goroutine, so
// producers never block on slow consumers (the store remains responsive, at
// the cost of memory for laggards — the trade the paper's streaming database
// makes by design).
type Subscription struct {
	id     int64
	store  *Store
	filter Filter

	mu      sync.Mutex
	pending []Message
	cond    *sync.Cond
	stopped bool

	quitOnce sync.Once
	quit     chan struct{}
	ch       chan Message
	done     chan struct{}
}

// Subscribe registers a subscription matching filter. If replay is true, all
// existing matching messages are delivered first (in global timestamp order)
// before live ones; otherwise only messages appended after the call are
// delivered.
func (s *Store) Subscribe(filter Filter, replay bool) *Subscription {
	sub := &Subscription{
		store:  s,
		filter: filter,
		ch:     make(chan Message, 256),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	sub.cond = sync.NewCond(&sub.mu)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		sub.stopped = true
		close(sub.ch)
		close(sub.done)
		close(sub.quit)
		return sub
	}
	s.nextSub++
	sub.id = s.nextSub
	if replay {
		// A stream-scoped filter only needs those streams' histories; the
		// full-store sweep (still used for unscoped filters) would make
		// every replay subscription O(total store messages) under the store
		// lock — a per-request cost that grows with global history.
		scan := s.order
		if len(filter.Streams) > 0 {
			scan = make([]string, 0, len(filter.Streams))
			seen := make(map[string]bool, len(filter.Streams))
			for _, id := range filter.Streams {
				if !seen[id] {
					seen[id] = true
					scan = append(scan, id)
				}
			}
		}
		var backlog []Message
		for _, id := range scan {
			st, ok := s.streams[id]
			if !ok {
				continue
			}
			for i := range st.msgs {
				if filter.Matches(&st.msgs[i]) {
					backlog = append(backlog, st.msgs[i].Clone())
				}
			}
		}
		// Seed the backlog before the subscription becomes visible to
		// appenders: once s.subs holds it, a concurrent Append may enqueue
		// a live message, and replayed history must still sort first.
		sortByTS(backlog)
		sub.pending = backlog
	}
	s.subs[sub.id] = sub
	s.mu.Unlock()

	go sub.pump()
	return sub
}

func sortByTS(msgs []Message) {
	for i := 1; i < len(msgs); i++ {
		for j := i; j > 0 && msgs[j].TS < msgs[j-1].TS; j-- {
			msgs[j], msgs[j-1] = msgs[j-1], msgs[j]
		}
	}
}

// C is the channel on which matching messages arrive. It is closed when the
// subscription is cancelled or the store shuts down.
func (sub *Subscription) C() <-chan Message { return sub.ch }

// Cancel detaches the subscription from the store and closes C. Messages
// still queued are discarded.
func (sub *Subscription) Cancel() {
	sub.store.mu.Lock()
	delete(sub.store.subs, sub.id)
	sub.store.mu.Unlock()
	sub.stop()
}

func (sub *Subscription) enqueue(msg Message) {
	sub.mu.Lock()
	if sub.stopped {
		sub.mu.Unlock()
		return
	}
	sub.pending = append(sub.pending, msg)
	sub.cond.Signal()
	sub.mu.Unlock()
}

func (sub *Subscription) stop() {
	sub.mu.Lock()
	if sub.stopped {
		sub.mu.Unlock()
		<-sub.done
		return
	}
	sub.stopped = true
	sub.cond.Signal()
	sub.mu.Unlock()
	sub.quitOnce.Do(func() { close(sub.quit) })
	<-sub.done
}

// pump moves messages from the pending queue to the channel until stopped.
func (sub *Subscription) pump() {
	defer close(sub.done)
	defer close(sub.ch)
	for {
		sub.mu.Lock()
		for len(sub.pending) == 0 && !sub.stopped {
			sub.cond.Wait()
		}
		if sub.stopped && len(sub.pending) == 0 {
			sub.mu.Unlock()
			return
		}
		batch := sub.pending
		sub.pending = nil
		stopped := sub.stopped
		sub.mu.Unlock()

		for i := range batch {
			select {
			case sub.ch <- batch[i]:
				sub.store.countDelivery()
			case <-sub.quit:
				return
			}
		}
		if stopped {
			return
		}
	}
}

func (s *Store) countDelivery() {
	s.mu.Lock()
	s.stats.Deliveries++
	s.mu.Unlock()
}
