package relational

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// Differential tests: every statement is executed through the compiled path
// and through the interpreted oracle, and the two must agree on columns,
// rows, plan strings and errors. The corpus covers the full dialect surface
// (every operator, joins, grouping, HAVING, DISTINCT, ORDER BY/LIMIT/OFFSET,
// parameters, NULLs) plus the lazy-error shapes the compiler refuses.

// diffDB builds a fixture with NULLs, duplicate values, indexes and three
// joinable tables.
func diffDB(t testing.TB, seed int64) *DB {
	t.Helper()
	db := NewDB()
	mustExec(t, db, `CREATE TABLE jobs (id INT, title TEXT, city TEXT, company_id INT, salary INT, remote BOOL)`)
	mustExec(t, db, `CREATE TABLE companies (id INT, name TEXT, size TEXT)`)
	mustExec(t, db, `CREATE TABLE apps (id INT, job_id INT, score FLOAT, status TEXT)`)
	mustExec(t, db, `CREATE INDEX idx_city ON jobs (city)`)
	mustExec(t, db, `CREATE ORDERED INDEX idx_salary ON jobs (salary)`)
	rng := rand.New(rand.NewSource(seed))
	titles := []string{"Data Scientist", "ML Engineer", "Analyst", "it's odd", ""}
	cities := []string{"Oakland", "Seattle", "Austin", "San Jose"}
	sizes := []string{"large", "mid", "small"}
	statuses := []string{"applied", "offer", "rejected"}
	for i := 0; i < 8; i++ {
		mustExec(t, db, `INSERT INTO companies VALUES (?, ?, ?)`,
			i, fmt.Sprintf("co%d", i), sizes[rng.Intn(len(sizes))])
	}
	for i := 0; i < 60; i++ {
		var city any = cities[rng.Intn(len(cities))]
		if rng.Intn(10) == 0 {
			city = nil // NULL city
		}
		var salary any = 90000 + rng.Intn(30)*1000
		if rng.Intn(12) == 0 {
			salary = nil
		}
		mustExec(t, db, `INSERT INTO jobs VALUES (?, ?, ?, ?, ?, ?)`,
			i, titles[rng.Intn(len(titles))], city, rng.Intn(10), salary, rng.Intn(2) == 0)
	}
	for i := 0; i < 120; i++ {
		var score any = float64(rng.Intn(1000)) / 10
		if rng.Intn(9) == 0 {
			score = nil
		}
		mustExec(t, db, `INSERT INTO apps VALUES (?, ?, ?, ?)`,
			i, rng.Intn(70), score, statuses[rng.Intn(len(statuses))])
	}
	return db
}

// runBoth executes sql through both paths and asserts identical outcomes.
// It returns the shared result for follow-up assertions.
func runBoth(t *testing.T, db *DB, sql string, params ...any) *Result {
	t.Helper()
	db.SetCompileEnabled(true)
	gotRes, gotErr := db.Query(sql, params...)
	db.SetCompileEnabled(false)
	wantRes, wantErr := db.Query(sql, params...)
	db.SetCompileEnabled(true)
	if (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("%s: compiled err = %v, interpreted err = %v", sql, gotErr, wantErr)
	}
	if gotErr != nil {
		if gotErr.Error() != wantErr.Error() {
			t.Fatalf("%s: compiled err %q, interpreted err %q", sql, gotErr, wantErr)
		}
		return nil
	}
	if !reflect.DeepEqual(gotRes.Columns, wantRes.Columns) {
		t.Fatalf("%s: columns %v vs %v", sql, gotRes.Columns, wantRes.Columns)
	}
	if len(gotRes.Rows) != len(wantRes.Rows) {
		t.Fatalf("%s: %d rows vs %d rows\ncompiled: %v\ninterp:   %v",
			sql, len(gotRes.Rows), len(wantRes.Rows), gotRes.Rows, wantRes.Rows)
	}
	for i := range gotRes.Rows {
		if !reflect.DeepEqual(gotRes.Rows[i], wantRes.Rows[i]) {
			t.Fatalf("%s: row %d differs: %v vs %v", sql, i, gotRes.Rows[i], wantRes.Rows[i])
		}
	}
	if gotRes.Plan != wantRes.Plan {
		t.Fatalf("%s: plan %q vs %q", sql, gotRes.Plan, wantRes.Plan)
	}
	// Plan strings only render under EXPLAIN now, so sweep the EXPLAIN
	// variant of every SELECT too: compiled and interpreted access planning
	// must describe the same path.
	if up := strings.ToUpper(strings.TrimSpace(sql)); strings.HasPrefix(up, "SELECT") {
		esql := "EXPLAIN " + sql
		db.SetCompileEnabled(true)
		gotE, gotErr := db.Query(esql, params...)
		db.SetCompileEnabled(false)
		wantE, wantErr := db.Query(esql, params...)
		db.SetCompileEnabled(true)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("%s: compiled err = %v, interpreted err = %v", esql, gotErr, wantErr)
		}
		if gotErr == nil && gotE.Plan != wantE.Plan {
			t.Fatalf("%s: plan %q vs %q", esql, gotE.Plan, wantE.Plan)
		}
	}
	return gotRes
}

// TestDifferentialDialectSurface pins compiled == interpreted on a corpus
// exercising every construct of the dialect, including the error shapes.
func TestDifferentialDialectSurface(t *testing.T) {
	db := diffDB(t, 7)
	corpus := []struct {
		sql    string
		params []any
	}{
		// Scans, filters, every comparison operator.
		{`SELECT id, title FROM jobs`, nil},
		{`SELECT * FROM jobs WHERE salary > 100000`, nil},
		{`SELECT id FROM jobs WHERE salary >= ? AND salary <= ?`, []any{95000, 110000}},
		{`SELECT id FROM jobs WHERE salary < 95000 OR remote = TRUE`, nil},
		{`SELECT id FROM jobs WHERE title != 'Analyst'`, nil},
		{`SELECT id FROM jobs WHERE NOT remote = TRUE AND city = 'Oakland'`, nil},
		{`SELECT id FROM jobs WHERE title LIKE '%data%'`, nil},
		{`SELECT id FROM jobs WHERE title LIKE '_L %'`, nil},
		{`SELECT id FROM jobs WHERE city IN ('Oakland', 'Austin', ?)`, []any{"Seattle"}},
		{`SELECT id FROM jobs WHERE city NOT IN ('Oakland')`, nil},
		{`SELECT id FROM jobs WHERE salary BETWEEN ? AND ?`, []any{95000, 105000}},
		{`SELECT id FROM jobs WHERE salary NOT BETWEEN 95000 AND 105000`, nil},
		{`SELECT id FROM jobs WHERE city IS NULL`, nil},
		{`SELECT id, salary FROM jobs WHERE salary IS NOT NULL AND salary = 99000.0`, nil},
		// Index-served predicates (EXPLAIN plans must match too).
		{`EXPLAIN SELECT id FROM jobs WHERE city = 'Oakland'`, nil},
		{`SELECT id FROM jobs WHERE city = ?`, []any{"Oakland"}},
		{`SELECT id FROM jobs WHERE salary >= 110000`, nil},
		{`EXPLAIN SELECT id FROM jobs WHERE salary BETWEEN 100000 AND 104000`, nil},
		// Projection shapes.
		{`SELECT title AS t, city AS c FROM jobs WHERE id < 10`, nil},
		{`SELECT *, id FROM jobs WHERE id < 5`, nil},
		{`SELECT DISTINCT title FROM jobs`, nil},
		{`SELECT DISTINCT title, remote FROM jobs`, nil},
		// Joins (inner/left, aliased, flipped ON, ambiguous errors).
		{`SELECT j.title, c.name FROM jobs j JOIN companies c ON j.company_id = c.id`, nil},
		{`SELECT j.title, c.name FROM jobs j JOIN companies c ON c.id = j.company_id WHERE c.size = 'mid'`, nil},
		{`SELECT j.id, c.name FROM jobs j LEFT JOIN companies c ON j.company_id = c.id ORDER BY j.id`, nil},
		{`SELECT a.id, j.title, c.name FROM apps a JOIN jobs j ON a.job_id = j.id JOIN companies c ON j.company_id = c.id WHERE a.score > ?`, []any{50.0}},
		{`SELECT id FROM jobs j JOIN companies c ON j.company_id = c.id`, nil}, // ambiguous id
		// Aggregates: global, grouped, HAVING, DISTINCT args, expressions.
		{`SELECT COUNT(*) FROM jobs`, nil},
		{`SELECT COUNT(*), COUNT(salary), COUNT(DISTINCT city) FROM jobs`, nil},
		{`SELECT MIN(salary), MAX(salary), AVG(salary), SUM(salary) FROM jobs`, nil},
		{`SELECT SUM(score), AVG(score) FROM apps`, nil},
		{`SELECT COUNT(*) FROM jobs WHERE id > 1000`, nil}, // empty input
		{`SELECT SUM(salary), MIN(title) FROM jobs WHERE id > 1000`, nil},
		{`SELECT city, COUNT(*) AS n FROM jobs GROUP BY city ORDER BY city`, nil},
		{`SELECT city, title, COUNT(*) AS n FROM jobs GROUP BY city, title ORDER BY city, title`, nil},
		{`SELECT city, AVG(salary) AS a FROM jobs GROUP BY city HAVING COUNT(*) >= 5 ORDER BY city`, nil},
		{`SELECT city, COUNT(*) AS n FROM jobs GROUP BY city HAVING AVG(salary) > ? ORDER BY n DESC, city`, []any{100000}},
		{`SELECT status, SUM(score) FROM apps GROUP BY status ORDER BY status`, nil},
		{`SELECT c.size, COUNT(*) AS n FROM jobs j JOIN companies c ON j.company_id = c.id GROUP BY c.size ORDER BY n DESC, size`, nil},
		{`SELECT SUM(title) FROM jobs`, nil},                     // non-numeric SUM error
		{`SELECT city, SUM(title) FROM jobs GROUP BY city`, nil}, // same, grouped
		{`SELECT COUNT(DISTINCT salary), SUM(DISTINCT salary) FROM jobs`, nil},
		// ORDER BY / LIMIT / OFFSET, output and input keys, ties.
		{`SELECT id, salary FROM jobs ORDER BY salary DESC, id ASC`, nil},
		{`SELECT id FROM jobs ORDER BY salary DESC LIMIT 5`, nil},
		{`SELECT id FROM jobs ORDER BY salary DESC LIMIT 5 OFFSET 3`, nil},
		{`SELECT title FROM jobs ORDER BY salary DESC LIMIT 4`, nil}, // unprojected key
		{`SELECT id FROM jobs ORDER BY id LIMIT 0`, nil},
		{`SELECT id FROM jobs ORDER BY id OFFSET 55`, nil},
		{`SELECT id FROM jobs ORDER BY id OFFSET 100`, nil},
		{`SELECT id FROM jobs LIMIT 7`, nil},
		{`SELECT id FROM jobs LIMIT 7 OFFSET 58`, nil},
		{`SELECT id FROM jobs LIMIT 100`, nil},
		{`SELECT DISTINCT title FROM jobs ORDER BY title LIMIT 3`, nil},
		{`SELECT DISTINCT title FROM jobs LIMIT 2`, nil},
		{`SELECT DISTINCT city FROM jobs ORDER BY salary`, nil}, // runtime row-count quirk
		{`SELECT city, COUNT(*) AS n FROM jobs GROUP BY city ORDER BY n DESC, city LIMIT 2`, nil},
		{`SELECT city FROM jobs GROUP BY city ORDER BY salary`, nil}, // agg ORDER BY error
		// Error shapes: lazy and eager resolution.
		{`SELECT nope FROM jobs`, nil},
		{`SELECT id FROM jobs WHERE nope = 1`, nil},
		{`SELECT id FROM missing`, nil},
		{`SELECT id FROM jobs WHERE title = ?`, nil}, // missing param
		{`SELECT *, COUNT(*) FROM jobs`, nil},        // star with aggregate
		{`SELECT id FROM jobs ORDER BY COUNT(id)`, nil},
		{`SELECT city, COUNT(*) FROM jobs GROUP BY nope`, nil},
		{`SELECT j.title FROM jobs j JOIN companies c ON j.nope = c.id`, nil},
	}
	for _, c := range corpus {
		runBoth(t, db, c.sql, c.params...)
	}
}

// TestDifferentialPropertyCorpus runs the randomized property-style corpus
// (random predicates, group keys, orderings and parameters over seeded data)
// through both executors.
func TestDifferentialPropertyCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 6; trial++ {
		db := diffDB(t, int64(100+trial))
		cols := []string{"id", "title", "city", "company_id", "salary", "remote"}
		ops := []string{"=", "!=", "<", "<=", ">", ">="}
		randPred := func() (string, []any) {
			switch rng.Intn(5) {
			case 0:
				return fmt.Sprintf("salary %s ?", ops[rng.Intn(len(ops))]), []any{90000 + rng.Intn(30)*1000}
			case 1:
				return "city IN (?, ?)", []any{"Oakland", "Seattle"}
			case 2:
				return "salary BETWEEN ? AND ?", []any{92000 + rng.Intn(10)*1000, 100000 + rng.Intn(10)*1000}
			case 3:
				return "title LIKE ?", []any{"%" + string("admes"[rng.Intn(5)]) + "%"}
			default:
				return "city IS NOT NULL AND remote = ?", []any{rng.Intn(2) == 0}
			}
		}
		for q := 0; q < 40; q++ {
			pred, params := randPred()
			var sql string
			switch rng.Intn(4) {
			case 0:
				sql = fmt.Sprintf(`SELECT id, title, salary FROM jobs WHERE %s ORDER BY id`, pred)
			case 1:
				sql = fmt.Sprintf(`SELECT %s, COUNT(*) AS n, AVG(salary) AS a FROM jobs WHERE %s GROUP BY %s ORDER BY %s`,
					cols[1+rng.Intn(2)], pred, cols[1+rng.Intn(2)], cols[1+rng.Intn(2)])
				// GROUP BY column and projected column may differ: both
				// paths must agree even on the resulting error/first-row
				// semantics.
				sql = strings.ReplaceAll(sql, "GROUP BY title ORDER BY city", "GROUP BY title ORDER BY title")
				sql = strings.ReplaceAll(sql, "GROUP BY city ORDER BY title", "GROUP BY city ORDER BY city")
			case 2:
				sql = fmt.Sprintf(`SELECT DISTINCT title FROM jobs WHERE %s ORDER BY title LIMIT %d`, pred, 1+rng.Intn(5))
			default:
				sql = fmt.Sprintf(`SELECT j.id, c.name FROM jobs j LEFT JOIN companies c ON j.company_id = c.id WHERE %s ORDER BY j.id LIMIT %d OFFSET %d`,
					strings.ReplaceAll(strings.ReplaceAll(pred, "salary", "j.salary"), "city", "j.city"), 1+rng.Intn(20), rng.Intn(5))
			}
			runBoth(t, db, sql, params...)
		}
	}
}

// TestDifferentialDML: UPDATE/DELETE through compiled predicates must mutate
// exactly the same rows as the interpreted path.
func TestDifferentialDML(t *testing.T) {
	mutations := []struct {
		sql    string
		params []any
	}{
		{`UPDATE jobs SET salary = ? WHERE city = 'Oakland' AND salary < ?`, []any{123456, 100000}},
		{`UPDATE jobs SET remote = TRUE, title = 'Promoted' WHERE salary > ? OR city IS NULL`, []any{105000}},
		{`UPDATE jobs SET salary = NULL WHERE id BETWEEN 10 AND 20`, nil},
		{`DELETE FROM jobs WHERE title LIKE '%analyst%' OR salary IS NULL`, nil},
		{`DELETE FROM jobs WHERE id IN (1, 3, 5, ?)`, []any{7}},
	}
	compiled := diffDB(t, 31)
	interp := diffDB(t, 31)
	interp.SetCompileEnabled(false)
	for _, m := range mutations {
		nc, errC := compiled.Exec(m.sql, m.params...)
		ni, errI := interp.Exec(m.sql, m.params...)
		if (errC == nil) != (errI == nil) || nc != ni {
			t.Fatalf("%s: compiled (%d, %v) vs interpreted (%d, %v)", m.sql, nc, errC, ni, errI)
		}
		a, err := compiled.Query(`SELECT * FROM jobs ORDER BY id`)
		if err != nil {
			t.Fatal(err)
		}
		b, err := interp.Query(`SELECT * FROM jobs ORDER BY id`)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Rows, b.Rows) {
			t.Fatalf("%s: table states diverge", m.sql)
		}
	}
}

// TestCompiledPlanReusedAcrossExecutions: prepared statements compile once;
// repeated executions skip parse and compile.
func TestCompiledPlanReusedAcrossExecutions(t *testing.T) {
	db := diffDB(t, 5)
	db.ResetCacheStats()
	st, err := db.Prepare(`SELECT id, title FROM jobs WHERE salary > ? ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := st.Query(90000 + i*500); err != nil {
			t.Fatal(err)
		}
	}
	if got := db.CacheStats().Compiles; got != 1 {
		t.Fatalf("Compiles = %d after 20 prepared executions, want 1", got)
	}
	// Query traffic on the same text shares the prepared slot via the
	// statement cache: still no recompilation.
	if _, err := db.Query(`SELECT id, title FROM jobs WHERE salary > ? ORDER BY id`, 95000); err != nil {
		t.Fatal(err)
	}
	if got := db.CacheStats().Compiles; got != 1 {
		t.Fatalf("Compiles = %d after cached Query, want 1", got)
	}
}

// TestCompiledPlanDDLInvalidation: recreating a table with a different
// column order must recompile the plan — stale offsets would silently
// return wrong columns.
func TestCompiledPlanDDLInvalidation(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `CREATE TABLE t (a INT, b TEXT)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 'one')`)
	st, err := db.Prepare(`SELECT b FROM t WHERE a = 1`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Query()
	if err != nil || res.Rows[0][0].S != "one" {
		t.Fatalf("pre-DDL = %v, %v", res, err)
	}
	before := db.CacheStats().Compiles

	// Swap the column order under the same names.
	mustExec(t, db, `DROP TABLE t`)
	mustExec(t, db, `CREATE TABLE t (b TEXT, a INT)`)
	mustExec(t, db, `INSERT INTO t VALUES ('two', 1)`)
	res, err = st.Query()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].S != "two" {
		t.Fatalf("post-DDL rows = %v (stale compiled offsets?)", res.Rows)
	}
	if after := db.CacheStats().Compiles; after <= before {
		t.Fatalf("Compiles %d -> %d: recreate did not recompile", before, after)
	}

	// Dropping the table turns the plan into the interpreted not-found error.
	mustExec(t, db, `DROP TABLE t`)
	if _, err := st.Query(); err == nil || !strings.Contains(err.Error(), "table not found") {
		t.Fatalf("err = %v, want table not found", err)
	}

	// A fallback shape (unknown column) must heal after the schema gains
	// the column.
	mustExec(t, db, `CREATE TABLE h (x INT)`)
	mustExec(t, db, `INSERT INTO h VALUES (1)`)
	sth, err := db.Prepare(`SELECT y FROM h`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sth.Query(); err == nil {
		t.Fatal("expected unknown column error")
	}
	mustExec(t, db, `DROP TABLE h`)
	mustExec(t, db, `CREATE TABLE h (y TEXT)`)
	mustExec(t, db, `INSERT INTO h VALUES ('healed')`)
	res, err = sth.Query()
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].S != "healed" {
		t.Fatalf("healed query = %v, %v", res, err)
	}
}

// TestCompiledIndexPickupWithoutRecompile: CREATE INDEX must not invalidate
// compiled plans (offsets are unchanged) yet the access path must start
// using the new index, because planAccess runs at execution time.
func TestCompiledIndexPickupWithoutRecompile(t *testing.T) {
	db := diffDB(t, 11)
	// Prepared as EXPLAIN so each execution reports the access path it chose
	// (plan strings render only under EXPLAIN); the property under test —
	// execution-time access planning against a fixed compiled program — is
	// identical for the plain SELECT.
	st, err := db.Prepare(`EXPLAIN SELECT id FROM apps WHERE status = 'offer'`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Query()
	if err != nil || !strings.Contains(res.Plan, "SeqScan") {
		t.Fatalf("pre-index plan = %q (%v)", res.Plan, err)
	}
	db.ResetCacheStats()
	mustExec(t, db, `CREATE INDEX idx_status ON apps (status)`)
	res, err = st.Query()
	if err != nil || !strings.Contains(res.Plan, "IndexScan") {
		t.Fatalf("post-index plan = %q (%v)", res.Plan, err)
	}
	if got := db.CacheStats().Compiles; got != 0 {
		t.Fatalf("CREATE INDEX forced %d recompiles of the prepared plan, want 0", got)
	}
}

// TestSharedPreparedStmtConcurrency races many goroutines over one shared
// prepared statement while DDL churns other tables (forcing concurrent
// recompile checks) — run under -race by tier-1.
func TestSharedPreparedStmtConcurrency(t *testing.T) {
	db := diffDB(t, 17)
	queries := []*Stmt{}
	for _, sql := range []string{
		`SELECT id, title FROM jobs WHERE salary > ? ORDER BY id LIMIT 10`,
		`SELECT city, COUNT(*) AS n FROM jobs GROUP BY city ORDER BY city`,
		`SELECT j.id, c.name FROM jobs j JOIN companies c ON j.company_id = c.id WHERE c.size = ?`,
	} {
		st, err := db.Prepare(sql)
		if err != nil {
			t.Fatal(err)
		}
		queries = append(queries, st)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				switch i % 4 {
				case 0:
					if _, err := queries[0].Query(90000 + i*100); err != nil {
						errs <- err
						return
					}
				case 1:
					if _, err := queries[1].Query(); err != nil {
						errs <- err
						return
					}
				case 2:
					if _, err := queries[2].Query("mid"); err != nil {
						errs <- err
						return
					}
				case 3:
					name := fmt.Sprintf("scratch_%d_%d", w, i)
					if _, err := db.Exec(`CREATE TABLE ` + name + ` (a INT)`); err != nil {
						errs <- err
						return
					}
					if _, err := db.Exec(`DROP TABLE ` + name); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSharedPreparedStmtAcrossTargetDDL races executions of one prepared
// statement against DROP/CREATE of its own table: every execution must see
// either a coherent old-schema or new-schema result (or a clean not-found
// error), never a torn read or panic.
func TestSharedPreparedStmtAcrossTargetDDL(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `CREATE TABLE flip (a INT, b TEXT)`)
	mustExec(t, db, `INSERT INTO flip VALUES (1, 'x')`)
	st, err := db.Prepare(`SELECT * FROM flip`)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_, _ = db.Exec(`DROP TABLE flip`)
			if i%2 == 0 {
				_, _ = db.Exec(`CREATE TABLE flip (a INT, b TEXT)`)
			} else {
				_, _ = db.Exec(`CREATE TABLE flip (b TEXT, a INT, c BOOL)`)
			}
		}
	}()
	for i := 0; i < 500; i++ {
		res, err := st.Query()
		if err != nil {
			if !strings.Contains(err.Error(), "table not found") {
				t.Fatalf("unexpected error: %v", err)
			}
			continue
		}
		if len(res.Columns) != 2 && len(res.Columns) != 3 {
			t.Fatalf("torn schema read: columns = %v", res.Columns)
		}
	}
	close(stop)
	wg.Wait()
}

// TestAppendValueKeyMatchesKeyEquivalence: the binary encoder must induce
// exactly the equality classes of Value.Key (ints unify with integral
// floats, strings with embedded NULs and tag bytes cannot collide).
func TestAppendValueKeyMatchesKeyEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := []Value{
		Null, NewBool(true), NewBool(false),
		NewInt(0), NewInt(3), NewInt(-3), NewInt(1 << 40),
		NewFloat(3), NewFloat(3.5), NewFloat(-3), NewFloat(0),
		NewString(""), NewString("3"), NewString("i:3"), NewString("a\x00b"), NewString("a"), NewString("b\x00"),
	}
	for i := 0; i < 200; i++ {
		vals = append(vals, genValue(uint8(rng.Intn(5)), rng.Int63(), rng.Float64()*1e3, fmt.Sprintf("s%d\x00%d", rng.Intn(9), rng.Intn(9)), rng.Intn(2) == 0))
	}
	for _, a := range vals {
		for _, b := range vals {
			ka := string(appendValueKey(nil, a))
			kb := string(appendValueKey(nil, b))
			if (a.Key() == b.Key()) != (ka == kb) {
				t.Fatalf("key equivalence mismatch: %#v vs %#v (Key %q/%q, binary %x/%x)",
					a, b, a.Key(), b.Key(), ka, kb)
			}
		}
	}
	// Multi-value keys must not collide across value boundaries.
	r1 := Row{NewString("a\x00"), NewString("b")}
	r2 := Row{NewString("a"), NewString("\x00b")}
	if string(appendRowKey(nil, r1)) == string(appendRowKey(nil, r2)) {
		t.Fatal("row keys collide across value boundaries")
	}
}
