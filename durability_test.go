package blueprint

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"blueprint/internal/registry"
	"blueprint/internal/streams"
)

// streamsMessage builds a simple data message for the torn-WAL test.
func streamsMessage(stream, payload string) streams.Message {
	return streams.Message{Stream: stream, Sender: "tester", Payload: payload}
}

// newDurableSystem boots a System over dir with durability on.
func newDurableSystem(t testing.TB, dir string) *System {
	t.Helper()
	sys, err := New(Config{ModelAccuracy: 1.0, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestDurableRestartRecoversTablesRegistriesAndStreams(t *testing.T) {
	dir := t.TempDir()
	sys := newDurableSystem(t, dir)
	db := sys.Enterprise.DB

	if _, err := db.Exec(`CREATE TABLE audit (id INT, note TEXT)`); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 25; i++ {
		if _, err := db.Exec(`INSERT INTO audit VALUES (?, ?)`, i, fmt.Sprintf("n%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Exec(`DELETE FROM jobs WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	var jobsAfter int
	if res, err := db.Query(`SELECT COUNT(*) FROM jobs`); err != nil {
		t.Fatal(err)
	} else {
		jobsAfter = int(res.Rows[0][0].I)
	}
	// A registry change that must survive via snapshot.
	spec, err := sys.AgentRegistry.Get("SUMMARIZER")
	if err != nil {
		t.Fatal(err)
	}
	spec.Description = spec.Description + " (tuned)"
	if err := sys.AgentRegistry.Update(spec); err != nil {
		t.Fatal(err)
	}
	wantVersion := spec.Version + 1
	// Stream traffic via a session.
	sess, err := sys.StartSession("")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Ask("How many jobs are in San Francisco?", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	sessID := sess.ID
	flowLen := len(sess.Flow())
	sys.Close() // graceful: snapshot + clean log close

	sys2 := newDurableSystem(t, dir)
	defer sys2.Close()
	if !sys2.DurabilityStats().Recovery.SnapshotRestored {
		t.Fatal("graceful restart did not restore from snapshot")
	}
	res, err := sys2.Enterprise.DB.Query(`SELECT COUNT(*) FROM audit`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 25 {
		t.Fatalf("audit rows after restart = %d, want 25", res.Rows[0][0].I)
	}
	res, err = sys2.Enterprise.DB.Query(`SELECT COUNT(*) FROM jobs`)
	if err != nil {
		t.Fatal(err)
	}
	if int(res.Rows[0][0].I) != jobsAfter {
		t.Fatalf("jobs rows after restart = %d, want %d (DELETE lost?)", res.Rows[0][0].I, jobsAfter)
	}
	got, err := sys2.AgentRegistry.Get("SUMMARIZER")
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != wantVersion {
		t.Fatalf("SUMMARIZER version after restart = %d, want %d", got.Version, wantVersion)
	}
	// The previous session's stream history is part of the recovered state.
	hist := sys2.Store.History(sessID)
	if len(hist) < flowLen {
		t.Fatalf("recovered %d stream messages for %s, want >= %d", len(hist), sessID, flowLen)
	}
}

func TestDurableRestartServesRepeatedAskFromMemo(t *testing.T) {
	dir := t.TempDir()
	sys := newDurableSystem(t, dir)
	sess, err := sys.StartSession("")
	if err != nil {
		t.Fatal(err)
	}
	const q = "How many jobs are in San Francisco?"
	res1, _, err := sess.ExecuteUtterance(q)
	if err != nil {
		t.Fatal(err)
	}
	want := len(res1.Steps)
	if want == 0 {
		t.Fatal("cold ask executed no steps")
	}
	sys.Close()

	sys2 := newDurableSystem(t, dir)
	defer sys2.Close()
	if sys2.MemoStats().Restored == 0 {
		t.Fatal("no memo entries restored after graceful restart")
	}
	sess2, err := sys2.StartSession("")
	if err != nil {
		t.Fatal(err)
	}
	res2, _, err := sess2.ExecuteUtterance(q)
	if err != nil {
		t.Fatal(err)
	}
	cached := 0
	for _, sr := range res2.Steps {
		if sr.Cached {
			cached++
		}
	}
	if cached == 0 {
		t.Fatalf("repeated ask after restart hit no memo entries (%d steps)", len(res2.Steps))
	}
	if sys2.MemoStats().Hits == 0 {
		t.Fatal("memo stats show no hits after restart")
	}
}

func TestDurableCrashReplayWithoutSnapshot(t *testing.T) {
	dir := t.TempDir()
	sys := newDurableSystem(t, dir)
	db := sys.Enterprise.DB
	if _, err := db.Exec(`CREATE TABLE crashy (id INT)`); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 40; i++ {
		if _, err := db.Exec(`INSERT INTO crashy VALUES (?)`, i); err != nil {
			t.Fatal(err)
		}
	}
	sys.SimulateCrash() // no snapshot: next open must replay the log

	sys2 := newDurableSystem(t, dir)
	defer sys2.Close()
	st := sys2.DurabilityStats()
	if st.Recovery.SnapshotRestored {
		t.Fatal("crash restart claimed a snapshot restore")
	}
	if st.Recovery.ReplayedRecords == 0 {
		t.Fatal("crash restart replayed no records")
	}
	res, err := sys2.Enterprise.DB.Query(`SELECT COUNT(*) FROM crashy`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 40 {
		t.Fatalf("crashy rows after replay = %d, want 40", res.Rows[0][0].I)
	}
}

// TestDurableCrashReplaysRegistryMutations: registry mutations were
// snapshot-only before the mutation WAL — a crash between snapshots lost
// them. Now every Register/Update/Derive/Deregister appends a WAL record,
// so a crash restart (no snapshot) must replay them.
func TestDurableCrashReplaysRegistryMutations(t *testing.T) {
	dir := t.TempDir()
	sys := newDurableSystem(t, dir)

	spec, err := sys.AgentRegistry.Get("SUMMARIZER")
	if err != nil {
		t.Fatal(err)
	}
	spec.Description = spec.Description + " (tuned)"
	if err := sys.AgentRegistry.Update(spec); err != nil {
		t.Fatal(err)
	}
	wantVersion := spec.Version + 1
	if _, err := sys.AgentRegistry.Derive("SUMMARIZER", "SUMMARIZER_FAST", "derived for crash test", nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.DataRegistry.Register(registry.DataAsset{
		Name: "scratch.crash_notes", Kind: registry.KindRelational,
		Level: registry.LevelTable, Description: "crash-test asset",
	}); err != nil {
		t.Fatal(err)
	}
	sys.SimulateCrash() // no snapshot: registry state must come from the log

	sys2 := newDurableSystem(t, dir)
	defer sys2.Close()
	if sys2.DurabilityStats().Recovery.SnapshotRestored {
		t.Fatal("crash restart claimed a snapshot restore")
	}
	got, err := sys2.AgentRegistry.Get("SUMMARIZER")
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != wantVersion {
		t.Fatalf("SUMMARIZER version after crash = %d, want %d (mutation lost)", got.Version, wantVersion)
	}
	if _, err := sys2.AgentRegistry.Get("SUMMARIZER_FAST"); err != nil {
		t.Fatalf("derived agent lost in crash: %v", err)
	}
	if _, err := sys2.DataRegistry.Get("scratch.crash_notes"); err != nil {
		t.Fatalf("registered asset lost in crash: %v", err)
	}
}

// TestDurableTornWALRecoversPrefix is the system-level crash-safety
// property test: kill the log at a random byte offset and the recovered
// relational rows and stream messages must be an exact prefix of the
// committed history.
func TestDurableTornWALRecoversPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 30
	for trial := 0; trial < 5; trial++ {
		dir := t.TempDir()
		sys := newDurableSystem(t, dir)
		db := sys.Enterprise.DB
		if _, err := db.Exec(`CREATE TABLE seqd (id INT)`); err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= n; i++ {
			if _, err := db.Exec(`INSERT INTO seqd VALUES (?)`, i); err != nil {
				t.Fatal(err)
			}
			if _, err := sys.Store.Publish(
				streamsMessage("torn-test", fmt.Sprintf("m%d", i)),
			); err != nil {
				t.Fatal(err)
			}
		}
		sys.SimulateCrash()

		segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
		if err != nil || len(segs) == 0 {
			t.Fatalf("no wal segments: %v %v", segs, err)
		}
		last := segs[len(segs)-1]
		fi, err := os.Stat(last)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(last, rng.Int63n(fi.Size()+1)); err != nil {
			t.Fatal(err)
		}

		sys2 := newDurableSystem(t, dir)
		rows := 0
		if res, err := sys2.Enterprise.DB.Query(`SELECT id FROM seqd ORDER BY id`); err == nil {
			rows = len(res.Rows)
			for i, row := range res.Rows {
				if row[0].I != int64(i+1) {
					t.Fatalf("trial %d: relational rows are not a prefix at %d: %v", trial, i, row[0].I)
				}
			}
		}
		msgs, _ := sys2.Store.ReadAll("torn-test")
		for i, m := range msgs {
			if m.PayloadString() != fmt.Sprintf("m%d", i+1) {
				t.Fatalf("trial %d: stream messages are not a prefix at %d: %q", trial, i, m.PayloadString())
			}
		}
		if rows > n || len(msgs) > n {
			t.Fatalf("trial %d: recovered more than committed (rows=%d msgs=%d)", trial, rows, len(msgs))
		}
		sys2.Close()
	}
}
