// Package llm implements SimLLM, a deterministic simulated large language
// model with a configurable quality-of-service profile.
//
// The paper's architecture treats LLMs as agents and as data sources with
// cost, latency and accuracy characteristics that planners and optimizers
// reason about (§IV, §V-G). This repository cannot call hosted models, so
// SimLLM substitutes them: it exposes the task heads the blueprint needs
// (extraction, classification, summarization, generation, knowledge lookup)
// backed by a small enterprise knowledge base, and meters every call with a
// cost model. Accuracy is simulated: with probability 1-accuracy a call
// degrades its output (drops an item, hallucinates an entity), which is
// exactly the failure mode the architecture's verification and optimization
// paths are designed around. All randomness derives from a per-call hash of
// (seed, prompt), so identical calls give identical answers regardless of
// ordering — making every experiment reproducible.
package llm

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
	"time"
)

// Tier identifies a model size class.
type Tier string

// Model tiers, ordered by capability and cost.
const (
	TierSmall  Tier = "small"
	TierMedium Tier = "medium"
	TierLarge  Tier = "large"
)

// Config describes one simulated model.
type Config struct {
	// Name is the model identifier (e.g. "sim-large-1").
	Name string
	// Tier is the size class.
	Tier Tier
	// CostPer1K is dollars per 1000 tokens (input+output combined).
	CostPer1K float64
	// BaseLatency is the fixed per-call latency.
	BaseLatency time.Duration
	// PerToken is the additional latency per output token.
	PerToken time.Duration
	// Accuracy in [0,1] is the probability a call returns an undegraded
	// answer.
	Accuracy float64
	// Seed drives the deterministic per-call randomness.
	Seed int64
}

// Presets returns the standard three-tier model family used across the
// benchmarks. The absolute numbers are synthetic; their *ordering* (larger =
// slower, costlier, more accurate) is what the optimizer experiments need.
func Presets(seed int64) []Config {
	return []Config{
		{Name: "sim-small", Tier: TierSmall, CostPer1K: 0.0005, BaseLatency: 15 * time.Millisecond, PerToken: 50 * time.Microsecond, Accuracy: 0.75, Seed: seed},
		{Name: "sim-medium", Tier: TierMedium, CostPer1K: 0.003, BaseLatency: 45 * time.Millisecond, PerToken: 150 * time.Microsecond, Accuracy: 0.90, Seed: seed},
		{Name: "sim-large", Tier: TierLarge, CostPer1K: 0.015, BaseLatency: 120 * time.Millisecond, PerToken: 400 * time.Microsecond, Accuracy: 0.98, Seed: seed},
	}
}

// Usage meters one call.
type Usage struct {
	InputTokens  int
	OutputTokens int
	// Cost in dollars under the model's cost model.
	Cost float64
	// Latency is the simulated wall time of the call (not slept).
	Latency time.Duration
	// Degraded reports whether the accuracy simulation perturbed the output.
	Degraded bool
}

// Model is one simulated LLM instance.
type Model struct {
	cfg Config
	kb  *KnowledgeBase
}

// New creates a model over the shared knowledge base.
func New(cfg Config, kb *KnowledgeBase) *Model {
	if kb == nil {
		kb = DefaultKnowledgeBase()
	}
	return &Model{cfg: cfg, kb: kb}
}

// Config returns the model's configuration.
func (m *Model) Config() Config { return m.cfg }

// CountTokens approximates tokenization as whitespace fields.
func CountTokens(text string) int { return len(strings.Fields(text)) }

// rng returns a deterministic per-call random source.
func (m *Model) rng(prompt string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s", m.cfg.Seed, m.cfg.Name, prompt)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// meter fills a Usage for the given input/output.
func (m *Model) meter(input, output string, degraded bool) Usage {
	in, out := CountTokens(input), CountTokens(output)
	return Usage{
		InputTokens:  in,
		OutputTokens: out,
		Cost:         float64(in+out) / 1000 * m.cfg.CostPer1K,
		Latency:      m.cfg.BaseLatency + time.Duration(out)*m.cfg.PerToken,
		Degraded:     degraded,
	}
}

// degrade reports whether this call should be perturbed.
func (m *Model) degrade(r *rand.Rand) bool {
	return r.Float64() >= m.cfg.Accuracy
}

// Classify assigns text to one of labels. A degraded call picks a random
// label. An empty label set returns "".
func (m *Model) Classify(text string, labels []string) (string, Usage) {
	if len(labels) == 0 {
		return "", m.meter(text, "", false)
	}
	r := m.rng("classify|" + text)
	degraded := m.degrade(r)
	var choice string
	if degraded {
		choice = labels[r.Intn(len(labels))]
	} else {
		choice = m.kb.BestLabel(text, labels)
	}
	return choice, m.meter(text, choice, degraded)
}

// Extract pulls the span of text matching the instruction. The simulator
// understands the instructions the blueprint's data planner emits:
// "criteria" strips conversational filler, "title" and "location" pull the
// job title and place from a query. A degraded call truncates the result.
func (m *Model) Extract(instruction, text string) (string, Usage) {
	r := m.rng("extract|" + instruction + "|" + text)
	degraded := m.degrade(r)
	out := m.kb.Extract(instruction, text)
	if degraded && out != "" {
		words := strings.Fields(out)
		if len(words) > 1 {
			out = strings.Join(words[:len(words)-1], " ")
		}
	}
	return out, m.meter(instruction+" "+text, out, degraded)
}

// Summarize condenses text to at most maxWords words. A degraded call
// injects a generic filler sentence (simulated hallucination).
func (m *Model) Summarize(text string, maxWords int) (string, Usage) {
	if maxWords <= 0 {
		maxWords = 40
	}
	r := m.rng("summarize|" + text)
	degraded := m.degrade(r)
	words := strings.Fields(text)
	if len(words) > maxWords {
		words = words[:maxWords]
	}
	out := strings.Join(words, " ")
	if len(out) > 0 {
		out = "Summary: " + out
	}
	if degraded {
		out += " (Additionally, results may relate to unspecified roles.)"
	}
	return out, m.meter(text, out, degraded)
}

// KnowledgeList answers a list-valued knowledge query against the knowledge
// base: "cities in <region>", "titles related to <title>", "skills for
// <title>". A degraded call drops one true item and may hallucinate one
// plausible-but-wrong item — the failure mode the Fig. 7 data plan has to
// tolerate.
func (m *Model) KnowledgeList(query string) ([]string, Usage) {
	r := m.rng("knowledge|" + query)
	degraded := m.degrade(r)
	items := m.kb.List(query)
	out := append([]string(nil), items...)
	if degraded && len(out) > 0 {
		drop := r.Intn(len(out))
		out = append(out[:drop], out[drop+1:]...)
		if r.Float64() < 0.5 {
			out = append(out, m.kb.Hallucination(query, r))
		}
	}
	return out, m.meter(query, strings.Join(out, " "), degraded)
}

// Generate produces free text for a prompt. List-shaped prompts delegate to
// KnowledgeList; otherwise a deterministic template response is produced.
func (m *Model) Generate(prompt string) (string, Usage) {
	if items, ok := m.kb.IsListQuery(prompt); ok {
		list, usage := m.KnowledgeList(items)
		return strings.Join(list, ", "), usage
	}
	r := m.rng("generate|" + prompt)
	degraded := m.degrade(r)
	out := m.kb.TemplateAnswer(prompt)
	if degraded {
		out += " Note that some details could not be verified."
	}
	return out, m.meter(prompt, out, degraded)
}

// Score rates the relevance of candidate to query in [0,1]; the simulator
// uses token overlap, and degraded calls add noise. It backs the JobMatcher
// agent's "predictive model" role.
func (m *Model) Score(query, candidate string) (float64, Usage) {
	r := m.rng("score|" + query + "|" + candidate)
	degraded := m.degrade(r)
	q := strings.Fields(strings.ToLower(query))
	c := map[string]bool{}
	for _, w := range strings.Fields(strings.ToLower(candidate)) {
		c[w] = true
	}
	if len(q) == 0 {
		return 0, m.meter(query+candidate, "", degraded)
	}
	hit := 0
	for _, w := range q {
		if c[w] {
			hit++
		}
	}
	score := float64(hit) / float64(len(q))
	if degraded {
		score += (r.Float64() - 0.5) * 0.4
		if score < 0 {
			score = 0
		}
		if score > 1 {
			score = 1
		}
	}
	return score, m.meter(query+" "+candidate, fmt.Sprintf("%.3f", score), degraded)
}
