package blueprint

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"blueprint/internal/resilience"
)

// The chaos suite (make chaos, `go test -race -run Chaos ./...`) drives
// full asks through a System while the deterministic fault injector fires
// at the agent, relational and durability sites. The contract under test is
// graceful degradation: faults surface as clean errors or retried-away
// hiccups, never as panics, wedged goroutines or a system that stays broken
// after the faults stop.

// chaosSession builds a throwaway system + session for one chaos scenario.
func chaosSession(t *testing.T, cfg Config) (*System, *Session) {
	t.Helper()
	cfg.ModelAccuracy = 1.0
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	sess, err := sys.StartSession("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sess.Close)
	return sys, sess
}

// chaosAsks runs n asks under whatever injector is active and reports how
// many answered. Every ask must return — an answer or a clean error —
// within its timeout; a hang fails the test.
func chaosAsks(t *testing.T, sess *Session, n int, timeout time.Duration) (answered int) {
	t.Helper()
	utterances := []string{
		"How many jobs are in San Francisco?",
		"Summarize the applicants for job 3",
		"average salary per city for salary over 120000",
	}
	for i := 0; i < n; i++ {
		done := make(chan error, 1)
		go func(text string) {
			_, err := sess.Ask(text, timeout)
			done <- err
		}(utterances[i%len(utterances)])
		select {
		case err := <-done:
			if err == nil {
				answered++
			} else if !errors.Is(err, ErrNoResponse) && !strings.Contains(err.Error(), "inject") {
				t.Fatalf("ask %d failed uncleanly: %v", i, err)
			}
		case <-time.After(timeout + 5*time.Second):
			t.Fatalf("ask %d wedged past its %s timeout", i, timeout)
		}
	}
	return answered
}

// TestChaosAgentErrorsAbsorbed injects errors into one in five agent
// invocations. Scheduler-dispatched steps retry (and replan) around them;
// tag-triggered front-door agents cannot, so some asks fail — but always
// cleanly, and the system answers normally once the faults stop.
func TestChaosAgentErrorsAbsorbed(t *testing.T) {
	_, sess := chaosSession(t, Config{})
	inj := resilience.NewInjector(1, resilience.Rule{
		Site: resilience.SiteAgent, Kind: resilience.KindError, Probability: 0.2,
	})
	resilience.Activate(inj)
	defer resilience.Deactivate()

	answered := chaosAsks(t, sess, 8, 2*time.Second)
	if answered < 3 {
		t.Fatalf("answered %d of 8 asks under 20%% agent-error injection, want >= 3", answered)
	}
	if st := inj.Stats(); st.Errors == 0 {
		t.Fatal("injector never fired — the chaos run tested nothing")
	}

	resilience.Deactivate()
	if _, err := sess.Ask("How many jobs are in Seattle?", 10*time.Second); err != nil {
		t.Fatalf("system did not recover after faults stopped: %v", err)
	}
}

// TestChaosRelationalFaultsDegradeGracefully injects errors into one in
// five relational statements: SQL-backed steps fail, retry and replan;
// asks answer or fail cleanly; recovery is immediate after deactivation.
func TestChaosRelationalFaultsDegradeGracefully(t *testing.T) {
	_, sess := chaosSession(t, Config{})
	inj := resilience.NewInjector(2, resilience.Rule{
		Site: resilience.SiteRelational, Kind: resilience.KindError, Probability: 0.2,
	})
	resilience.Activate(inj)
	defer resilience.Deactivate()

	answered := chaosAsks(t, sess, 8, 2*time.Second)
	if answered < 3 {
		t.Fatalf("answered %d of 8 asks under 20%% relational-error injection, want >= 3", answered)
	}

	resilience.Deactivate()
	if _, err := sess.Ask("How many jobs are in San Francisco?", 10*time.Second); err != nil {
		t.Fatalf("system did not recover after faults stopped: %v", err)
	}
}

// TestChaosTransientHangsFailCleanly injects bounded hangs (300ms, then
// the invocation fails) into the first three agent invocations. Those land
// on the tag-triggered front door, which has no retry path by design — the
// affected asks must fail cleanly (no wedge past the 300ms hang bound plus
// the ask timeout), and the first ask after the transient window must
// answer normally.
func TestChaosTransientHangsFailCleanly(t *testing.T) {
	_, sess := chaosSession(t, Config{})
	inj := resilience.NewInjector(3, resilience.Rule{
		Site: resilience.SiteAgent, Kind: resilience.KindHang,
		Probability: 1, Latency: 300 * time.Millisecond, Limit: 3,
	})
	resilience.Activate(inj)
	defer resilience.Deactivate()

	// Three asks burn the hang budget; each must return within its
	// timeout (chaosAsks enforces that) even though it may not answer.
	chaosAsks(t, sess, 3, 2*time.Second)
	if st := inj.Stats(); st.Hangs == 0 {
		t.Fatal("hang rule never fired — the chaos run tested nothing")
	}
	// The window has passed (limit 3): the next ask must answer.
	if answered := chaosAsks(t, sess, 2, 10*time.Second); answered < 1 {
		t.Fatal("no ask answered after the hang window passed")
	}
	if st := inj.Stats(); st.Hangs != 3 {
		t.Fatalf("hang rule fired %d times, want exactly its limit of 3", st.Hangs)
	}
}

// TestChaosDurabilityFaultsFailCleanly injects errors into WAL appends:
// writes may fail but must fail cleanly, and once the faults stop the
// system keeps serving and a restart recovers the surviving state.
func TestChaosDurabilityFaultsFailCleanly(t *testing.T) {
	dir := t.TempDir()
	sys, sess := chaosSession(t, Config{DataDir: dir})
	if _, err := sess.Ask("How many jobs are in San Francisco?", 10*time.Second); err != nil {
		t.Fatalf("baseline ask: %v", err)
	}

	inj := resilience.NewInjector(4, resilience.Rule{
		Site: resilience.SiteDurability, Kind: resilience.KindError, Probability: 0.5, Limit: 10,
	})
	resilience.Activate(inj)
	defer resilience.Deactivate()
	// Durable writes under injection: errors are acceptable, panics and
	// wedges are not.
	for i := 0; i < 6; i++ {
		_, _ = sys.Enterprise.DB.Exec("UPDATE jobs SET salary = 123450 WHERE id = 1")
	}
	chaosAsks(t, sess, 3, 2*time.Second)
	resilience.Deactivate()

	if _, err := sess.Ask("How many jobs are in Oakland?", 10*time.Second); err != nil {
		t.Fatalf("system did not recover after durability faults stopped: %v", err)
	}
	sess.Close()
	sys.Close()

	// Restart over the same directory: recovery must succeed (a torn or
	// short log is repaired, not fatal).
	re, err := New(Config{Seed: 42, ModelAccuracy: 1.0, DataDir: dir})
	if err != nil {
		t.Fatalf("restart after durability chaos: %v", err)
	}
	defer re.Close()
	s2, err := re.StartSession("")
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.Ask("How many jobs are in San Francisco?", 10*time.Second); err != nil {
		t.Fatalf("ask after recovery: %v", err)
	}
}

// TestChaosCrashHookDrivesWarmRestart wires the injector's crash hook to a
// signal, trips it on a durable write, then performs the crash the paper's
// "restart on failure" story expects: SimulateCrash (no final snapshot) and
// a reopen that replays the WAL.
func TestChaosCrashHookDrivesWarmRestart(t *testing.T) {
	dir := t.TempDir()
	sys, sess := chaosSession(t, Config{DataDir: dir})
	if _, err := sess.Ask("Summarize the applicants for job 3", 10*time.Second); err != nil {
		t.Fatalf("baseline ask: %v", err)
	}

	// Unlimited crash rule: background bookkeeping appends may hit the site
	// first, so a one-shot rule could be spent before the UPDATE below
	// reaches the WAL. The hook is once-guarded for the same reason.
	crashed := make(chan struct{})
	var once sync.Once
	inj := resilience.NewInjector(5, resilience.Rule{
		Site: resilience.SiteDurability, Kind: resilience.KindCrash, Probability: 1,
	})
	inj.OnCrash(func() { once.Do(func() { close(crashed) }) })
	resilience.Activate(inj)
	defer resilience.Deactivate()

	// A durable write hits the WAL append site and trips the crash.
	if _, err := sys.Enterprise.DB.Exec("UPDATE jobs SET salary = 200000 WHERE id = 2"); err == nil {
		t.Fatal("write during an injected durability crash reported success")
	}
	select {
	case <-crashed:
	case <-time.After(5 * time.Second):
		t.Fatal("crash hook never fired")
	}
	resilience.Deactivate()
	sess.Close()
	sys.SimulateCrash()

	// Reopen: WAL replay (no final snapshot was taken) must come back warm
	// enough to answer immediately.
	re, err := New(Config{Seed: 42, ModelAccuracy: 1.0, DataDir: dir})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer re.Close()
	if re.DurabilityStats().Recovery.ReplayedRecords == 0 && !re.DurabilityStats().Recovery.SnapshotRestored {
		t.Fatal("recovery neither replayed the log nor restored a snapshot")
	}
	s2, err := re.StartSession("")
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.Ask("Summarize the applicants for job 3", 10*time.Second); err != nil {
		t.Fatalf("ask after crash recovery: %v", err)
	}
}
