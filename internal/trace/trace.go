// Package trace reconstructs and verifies message flows from the stream
// store's history — the observability payoff of making orchestration
// explicit on streams (§V-A: "enhancing observability"). The Fig. 9 and
// Fig. 10 integration tests assert their exact sender sequences with this
// package, and the benchmark harness uses it to report per-component
// message counts.
package trace

import (
	"fmt"
	"strings"

	"blueprint/internal/obs"
	"blueprint/internal/streams"
)

// Step is one observed message in a flow.
type Step struct {
	// TS is the global logical timestamp.
	TS int64
	// Sender is the producing component.
	Sender string
	// Stream is the carrying stream.
	Stream string
	// Kind is the message kind.
	Kind streams.Kind
	// Op is the control directive op ("" for data/event messages).
	Op string
	// Agent is the directive's target agent, when addressed.
	Agent string
	// Tags are the message tags.
	Tags []string
	// Payload is a short rendering of the payload.
	Payload string
}

// Flow extracts the ordered steps of a session from store history.
func Flow(store *streams.Store, session string) []Step {
	msgs := store.History(session)
	out := make([]Step, 0, len(msgs))
	for _, m := range msgs {
		s := Step{
			TS:     m.TS,
			Sender: m.Sender,
			Stream: m.Stream,
			Kind:   m.Kind,
			Tags:   m.Tags,
		}
		if m.Directive != nil {
			s.Op = m.Directive.Op
			s.Agent = m.Directive.Agent
		}
		// Rune-safe: payloads carry user text, and a byte slice at 60
		// could split a multi-byte UTF-8 character.
		s.Payload = obs.Truncate(m.PayloadString(), 60)
		out = append(out, s)
	}
	return out
}

// Matcher matches one flow step. Zero fields match anything.
type Matcher struct {
	// Sender must equal the step sender when set.
	Sender string
	// Op must equal the control op when set.
	Op string
	// Agent must equal the directive target when set.
	Agent string
	// Tag must be present among the step tags when set.
	Tag string
	// Kind must match when set (use -1 / KindAny for any).
	Kind streams.Kind
	// AnyKind disables kind matching.
	AnyKind bool
}

// Matches reports whether the matcher accepts the step.
func (m Matcher) Matches(s Step) bool {
	if m.Sender != "" && s.Sender != m.Sender {
		return false
	}
	if m.Op != "" && s.Op != m.Op {
		return false
	}
	if m.Agent != "" && s.Agent != m.Agent {
		return false
	}
	if m.Tag != "" {
		found := false
		for _, t := range s.Tags {
			if t == m.Tag {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	if !m.AnyKind && s.Kind != m.Kind {
		return false
	}
	return true
}

// MatchSequence reports whether the pattern occurs as an ordered
// subsequence of the flow and returns the matched step indices.
func MatchSequence(flow []Step, pattern []Matcher) ([]int, bool) {
	idx := make([]int, 0, len(pattern))
	pi := 0
	for si := 0; si < len(flow) && pi < len(pattern); si++ {
		if pattern[pi].Matches(flow[si]) {
			idx = append(idx, si)
			pi++
		}
	}
	return idx, pi == len(pattern)
}

// Senders returns the distinct senders in order of first appearance —
// the "U -> AE -> TC -> S" summary of Fig. 9.
func Senders(flow []Step) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range flow {
		if s.Sender == "" || seen[s.Sender] {
			continue
		}
		seen[s.Sender] = true
		out = append(out, s.Sender)
	}
	return out
}

// CountBySender tallies messages per sender.
func CountBySender(flow []Step) map[string]int {
	out := map[string]int{}
	for _, s := range flow {
		out[s.Sender]++
	}
	return out
}

// CountByOp tallies control messages per op.
func CountByOp(flow []Step) map[string]int {
	out := map[string]int{}
	for _, s := range flow {
		if s.Op != "" {
			out[s.Op]++
		}
	}
	return out
}

// Render prints the flow one step per line (debugging aid and bpctl
// output).
func Render(flow []Step) string {
	var b strings.Builder
	for _, s := range flow {
		fmt.Fprintf(&b, "[%4d] %-16s %-8s %-28s", s.TS, s.Sender, s.Kind, s.Stream)
		if s.Op != "" {
			fmt.Fprintf(&b, " %s", s.Op)
			if s.Agent != "" {
				fmt.Fprintf(&b, "(%s)", s.Agent)
			}
		}
		if len(s.Tags) > 0 {
			fmt.Fprintf(&b, " tags=%v", s.Tags)
		}
		if s.Payload != "" {
			fmt.Fprintf(&b, " %q", s.Payload)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
