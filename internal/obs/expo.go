package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4): every registered
// instrument rendered as `# HELP` / `# TYPE` comments followed by its
// samples, histograms with the full cumulative `_bucket{le=...}` series
// plus `_sum` and `_count`. blueprintd serves this at GET /metrics.

func bucketSuffix(le float64) string {
	return `_bucket{le="` + formatFloat(le) + `"}`
}

// EscapeLabel escapes a Prometheus label value per the text exposition
// format: backslash, double quote and newline must be escaped or a hostile
// value (a tenant name is client-controlled via X-Tenant) could break out
// of its label and forge samples.
func EscapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 8)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every instrument in name order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	items := make(map[string]metric, len(names))
	for _, n := range names {
		items[n] = r.items[n]
	}
	r.mu.Unlock()
	sort.Strings(names)

	var b strings.Builder
	for _, n := range names {
		m := items[n]
		if help := m.metricHelp(); help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", n, strings.ReplaceAll(help, "\n", " "))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", n, m.metricType())
		m.sample(func(suffix string, v float64) {
			b.WriteString(n)
			b.WriteString(suffix)
			b.WriteByte(' ')
			b.WriteString(formatFloat(v))
			b.WriteByte('\n')
		})
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Snapshot flattens the registry into name->value pairs — the thin view
// blueprintd's /stats serves. Counters and gauges contribute their value
// under their own name; histograms contribute `_count`, `_sum` and
// interpolated `_p50`/`_p95`/`_p99` entries.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	items := make(map[string]metric, len(r.items))
	for n, m := range r.items {
		items[n] = m
	}
	r.mu.Unlock()

	out := make(map[string]float64, len(items)*2)
	for n, m := range items {
		if h, ok := m.(*Histogram); ok {
			qs := h.Quantiles(0.5, 0.95, 0.99)
			out[n+"_count"] = float64(h.Count())
			out[n+"_sum"] = h.Sum()
			out[n+"_p50"] = qs[0]
			out[n+"_p95"] = qs[1]
			out[n+"_p99"] = qs[2]
			continue
		}
		m.sample(func(suffix string, v float64) {
			out[n+suffix] = v
		})
	}
	return out
}
