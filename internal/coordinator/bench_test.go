package coordinator

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"blueprint/internal/budget"
)

// benchStepLatency keeps the benchmarks honest (real waiting, as an agent
// invocation would) while staying fast enough for -bench runs.
const benchStepLatency = 2 * time.Millisecond

// BenchmarkFanoutSequential and BenchmarkFanoutParallel measure the same
// 4-wide fan-out plan (plus a join step) under MaxParallel=1 and the default
// worker pool: the parallel scheduler should complete the fan-out wave in
// ~1x step latency instead of 4x.
func benchmarkFanout(b *testing.B, maxParallel int) {
	const n = 4
	fe := newFanEnv(b, n, benchStepLatency)
	c := New(fe.store, fe.reg, fe.tp, fe.model, Options{MaxParallel: maxParallel})
	plan := fanOutPlan(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.ExecutePlan(sess, plan, budget.New(budget.Limits{})); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFanoutSequential(b *testing.B) { benchmarkFanout(b, 1) }
func BenchmarkFanoutParallel(b *testing.B)   { benchmarkFanout(b, 0) }

// BenchmarkMultiSessionThroughput executes one fan-out plan per session
// across 4 sessions concurrently — the event-driven multi-session dispatch
// the ROADMAP's "millions of users" north star depends on.
func BenchmarkMultiSessionThroughput(b *testing.B) {
	const n, sessions = 4, 4
	fe := &fanEnv{env: newEnv(b)}
	fe.register(b, n, benchStepLatency)
	ids := make([]string, sessions)
	for i := range ids {
		ids[i] = fmt.Sprintf("session:bench-%d", i)
		fe.attach(b, ids[i], n, benchStepLatency)
	}
	c := New(fe.store, fe.reg, fe.tp, fe.model, Options{})
	plan := fanOutPlan(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for _, id := range ids {
			wg.Add(1)
			go func(session string) {
				defer wg.Done()
				if _, err := c.ExecutePlan(session, plan, budget.New(budget.Limits{})); err != nil {
					b.Error(err)
				}
			}(id)
		}
		wg.Wait()
	}
	b.ReportMetric(float64(sessions), "plans/op")
}
