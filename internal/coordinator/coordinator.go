// Package coordinator implements the blueprint's task coordinator (§V-H):
// it receives a task plan DAG (with an initial budget and the optimizer's
// projections), directs execution by streaming EXECUTE_AGENT instructions to
// agents, applies the data planner's transformations so upstream outputs fit
// downstream inputs (e.g. PROFILER.CRITERIA <- USER.TEXT), monitors actual
// cost/latency/accuracy against the budget, and aborts or triggers
// replanning when thresholds are exceeded.
//
// # Concurrent DAG scheduling
//
// ExecutePlan honours the plan's DAG structure rather than its listing
// order: the step dependencies are derived from the bindings
// (planner.Plan.Deps), and a bounded worker pool (Options.MaxParallel,
// default DefaultMaxParallel) dispatches every step whose dependencies are
// satisfied concurrently. A fan-out plan with N independent steps therefore
// completes in one wave (planner.Plan.Waves describes the wave structure),
// and the optimizer projects its latency as the critical path over the DAG,
// not the sum of the steps.
//
// Violation semantics under concurrency: each step is admitted through the
// budget's atomic Reserve/Commit path, so concurrently dispatched steps can
// never jointly overshoot the cost limit; latency is charged as each step's
// marginal growth of the plan's critical path over actual step latencies,
// so the latency limit means the plan's (possibly simulated) end-to-end
// latency — consistent with the optimizer's critical-path projection —
// rather than a sum that would double-count overlapping steps. A step that does
// not fit triggers the violation policy (Abort cancels the shared context,
// which unblocks every in-flight step and skips queued ones; Confirm
// consults ConfirmFunc — serialized so one prompt shows at a time, and at
// most once per step; Replan applies only at the whole-plan projection
// stage and otherwise aborts). Step results are always reported in plan
// order regardless of completion order, and Final remains the outputs of
// the last completed step in plan order.
//
// Service executes every watched plan on its own goroutine, so plans
// arriving on one session's streams — and plans across sessions — run
// concurrently; completions are announced on the event-driven ResultC
// channel.
//
// # Step-result memoization
//
// With Options.Memo set, the scheduler consults the memoization store
// (internal/memo) before dispatching a ready step whose agent is declared
// Cacheable in the registry: a hit satisfies the step immediately — zero
// cost and zero marginal critical-path latency charged to the budget
// (budget.ChargeMemoHit) — and unblocks its dependents; a miss executes
// under single-flight deduplication, so N concurrent identical steps
// (within a plan, across plans, and across sessions — Service instances
// share one Coordinator and therefore one store) run exactly once while
// the rest await the winner. The pre-execution projection prices plans
// against the same store (optimizer.EstimatePlanWithMemo), so a warm
// repeated ask is admitted at its true residual cost. Registry version
// bumps and data-source updates invalidate entries (and poison in-flight
// executions) through the store's epoch machinery, so no stale result is
// ever cached or shared.
package coordinator

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"blueprint/internal/agent"
	"blueprint/internal/budget"
	"blueprint/internal/dataplan"
	"blueprint/internal/llm"
	"blueprint/internal/memo"
	"blueprint/internal/obs"
	"blueprint/internal/optimizer"
	"blueprint/internal/planner"
	"blueprint/internal/registry"
	"blueprint/internal/resilience"
	"blueprint/internal/streams"
)

// Process-wide coordinator instruments.
var (
	mPlans       = obs.Default.Counter("blueprint_plans_total", "plan executions started")
	mPlanAborts  = obs.Default.Counter("blueprint_plan_aborts_total", "plan executions aborted on budget violations")
	mSteps       = obs.Default.Counter("blueprint_scheduler_steps_total", "plan steps scheduled (executed or satisfied from the memo)")
	mStepsCached = obs.Default.Counter("blueprint_scheduler_steps_cached_total", "plan steps satisfied from the memoization store")
	mBusyWorkers = obs.Default.Gauge("blueprint_scheduler_busy_workers", "scheduler workers currently executing a step")
	mStepLatency = obs.Default.Histogram("blueprint_step_latency_seconds", "wall time of one scheduled step, admission to commit", obs.LatencyBuckets)
	mStepRetries = obs.Default.Counter("blueprint_scheduler_step_retries_total", "same-agent step retries dispatched under the retry policy")
	mStepsStale  = obs.Default.Counter("blueprint_scheduler_steps_degraded_total", "plan steps answered from stale memo entries while the agent's breaker was open")
)

// Coordinator errors.
var (
	ErrAborted     = errors.New("coordinator: execution aborted")
	ErrStepFailed  = errors.New("coordinator: step failed")
	ErrStepTimeout = errors.New("coordinator: step timed out")
)

// ViolationPolicy selects what happens when the budget is (or would be)
// exceeded.
type ViolationPolicy int

const (
	// Abort stops execution and emits an ABORT control message (default).
	Abort ViolationPolicy = iota
	// Replan asks the task planner for an alternative for the pending step
	// and retries once before aborting.
	Replan
	// Confirm consults the ConfirmFunc; execution continues if it returns
	// true ("prompt the user to confirm budget violations", §V-H).
	Confirm
)

// Options configure a coordinator.
type Options struct {
	// OnViolation selects the budget-violation policy.
	OnViolation ViolationPolicy
	// ConfirmFunc is consulted under the Confirm policy. Calls are
	// serialized even when concurrent steps violate simultaneously.
	ConfirmFunc func(violations []budget.Violation) bool
	// StepTimeout bounds one agent invocation end-to-end (default 30s).
	StepTimeout time.Duration
	// RetryOnError enables one replan+retry when an agent reports an error.
	RetryOnError bool
	// MaxParallel bounds how many plan steps execute concurrently
	// (default DefaultMaxParallel; 1 degenerates to sequential execution).
	MaxParallel int
	// Memo enables cross-session step-result memoization: results of
	// Cacheable agents are reused (and concurrent identical executions
	// deduplicated) through this store. nil disables memoization.
	Memo *memo.Store
	// Retry is the same-agent retry policy for failed step executions:
	// transient errors (resilience.Retryable) retry with exponential
	// backoff, every backoff sleep charged against the plan's latency
	// budget. The zero value disables same-agent retries (one attempt);
	// replan fallback (RetryOnError) still applies afterwards.
	Retry resilience.RetryPolicy
	// Breakers, when set, gates every step dispatch through the target
	// agent's circuit breaker and records each execution outcome. An open
	// breaker rejects the dispatch; the step is then served degraded from a
	// stale memo entry (Degrade permitting) or replanned to an alternative
	// agent.
	Breakers *resilience.Set
	// Degrade rules the stale-memo degraded serve used when a breaker is
	// open: a resident entry whose age is within the policy's bound of the
	// agent's declared Freshness answers the step, marked Degraded.
	Degrade resilience.DegradePolicy
	// SLO, when set, receives one per-agent observation per fresh step
	// execution attempt (latency + error), feeding the per-agent burn
	// rates GET /slo and bpctl top report. nil disables (nil-safe).
	SLO *obs.SLOTracker
}

// Coordinator executes task plans over a stream store.
type Coordinator struct {
	store     *streams.Store
	reg       *registry.AgentRegistry
	tp        *planner.TaskPlanner
	model     *llm.Model
	opts      Options
	confirmMu sync.Mutex // serializes ConfirmFunc consultations
}

// New creates a coordinator. The planner may be nil when replanning is not
// needed; the model backs user-text transforms (criteria extraction).
func New(store *streams.Store, reg *registry.AgentRegistry, tp *planner.TaskPlanner, model *llm.Model, opts Options) *Coordinator {
	if opts.StepTimeout <= 0 {
		opts.StepTimeout = 30 * time.Second
	}
	return &Coordinator{store: store, reg: reg, tp: tp, model: model, opts: opts}
}

// StepResult records one executed step.
type StepResult struct {
	StepID  string
	Agent   string
	Outputs map[string]any
	Cost    float64
	Latency time.Duration
	Err     string
	// Cached reports that the step was satisfied from the memoization
	// store (a cache hit or a coalesced share of a concurrent identical
	// execution) rather than executed; Cost and Latency are then zero.
	Cached bool
	// Degraded reports a graceful-degradation serve: the agent's breaker
	// was open and the step was answered from a stale memo entry whose age
	// (StaleFor) the degradation policy judged freshness-valid.
	Degraded bool
	// StaleFor is the age of the stale entry served (Degraded only).
	StaleFor time.Duration
}

// Result is the outcome of one plan execution.
type Result struct {
	PlanID string
	// Steps holds per-step results in plan order (steps execute
	// concurrently; completion order is not meaningful).
	Steps []StepResult
	// Final holds the last step's outputs.
	Final map[string]any
	// Budget is the closing budget report.
	Budget budget.Report
	// Aborted reports whether execution stopped on a violation.
	Aborted bool
	// AbortReason describes why.
	AbortReason string
	// Replans counts replanning events.
	Replans int
	// Retries counts same-agent step retries dispatched under the retry
	// policy (each also charged its backoff in Budget.Retries).
	Retries int
	// Degraded reports that at least one step was answered from a stale
	// memo entry (see StepResult.Degraded).
	Degraded bool
}

// ExecutePlan runs the plan within the session, charging b for every step.
// Steps execute concurrently along the plan's dependency DAG (see the
// package comment); the call itself blocks until the plan completes, fails,
// or aborts.
func (c *Coordinator) ExecutePlan(session string, p *planner.Plan, b *budget.Budget) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if b == nil {
		b = budget.New(budget.Limits{})
	}
	res := &Result{PlanID: p.ID}
	mPlans.Inc()

	// The plan span anchors beneath the session's active root (the ask in
	// flight); watched plans arriving on streams have no caller context, so
	// anchoring — not a ctx parameter — is what links them into the tree.
	span := obs.Spans.StartUnder(session, "coordinator", "plan")
	span.SetAttr("plan", p.ID)
	if p.Utterance != "" {
		span.SetAttr("utterance", obs.Truncate(p.Utterance, 60))
	}
	defer span.End()

	// Pre-execution projection (§V-H: plan arrives "along with an initial
	// budget and projected costs (estimated by the optimizer)"). The
	// latency projection is the critical path over the DAG, so fan-out
	// plans are not falsely rejected for the sum of their parallel steps;
	// with memoization on, steps expected to hit the cache are priced at
	// zero, so warm plans are admitted at their residual cost.
	projCost, projLatency, _, _ := optimizer.EstimatePlanWithMemo(p, c.reg, c.opts.Memo)
	if b.WouldExceed(projCost, projLatency) {
		switch c.opts.OnViolation {
		case Confirm:
			if c.confirm(nil) {
				break
			}
			return c.abort(session, res, b, fmt.Sprintf("projected cost $%.4f/latency %s exceeds budget", projCost, projLatency))
		case Replan:
			if c.tp != nil && c.reg != nil {
				if n, _ := optimizer.AssignAgents(p, c.reg, optimizer.CheapestObjectives(), b.Limits()); n > 0 {
					res.Replans++
					projCost, projLatency, _, _ = optimizer.EstimatePlanWithMemo(p, c.reg, c.opts.Memo)
					if b.WouldExceed(projCost, projLatency) {
						return c.abort(session, res, b, "still over budget after cost-optimized reassignment")
					}
					break
				}
			}
			return c.abort(session, res, b, fmt.Sprintf("projected cost $%.4f exceeds budget and no replan available", projCost))
		default:
			return c.abort(session, res, b, fmt.Sprintf("projected cost $%.4f/latency %s exceeds budget", projCost, projLatency))
		}
	}

	err := newScheduler(c, session, p, b, res, span).run()
	res.Budget = b.Snapshot()
	return res, err
}

// confirm consults ConfirmFunc under confirmMu, so prompts are serialized
// across concurrent steps and concurrently executing plans (Service runs
// each watched plan on its own goroutine over one shared Coordinator).
func (c *Coordinator) confirm(vs []budget.Violation) bool {
	if c.opts.ConfirmFunc == nil {
		return false
	}
	c.confirmMu.Lock()
	defer c.confirmMu.Unlock()
	return c.opts.ConfirmFunc(vs)
}

func (c *Coordinator) abort(session string, res *Result, b *budget.Budget, reason string) (*Result, error) {
	mPlanAborts.Inc()
	res.Aborted = true
	res.AbortReason = reason
	res.Budget = b.Snapshot()
	_, _ = c.store.Append(streams.Message{
		Stream: agent.ControlStream(session), Kind: streams.Control, Sender: "coordinator",
		Directive: &streams.Directive{Op: streams.OpAbort, Args: map[string]any{"reason": reason}},
	})
	return res, fmt.Errorf("%w: %s", ErrAborted, reason)
}

// resolveInputs materializes a step's bindings: upstream outputs by
// reference, literals directly, and user text — transformed through a
// micro data plan (extract operator) when the binding names a transform.
func (c *Coordinator) resolveInputs(session string, p *planner.Plan, step planner.Step, outputs map[string]map[string]any, b *budget.Budget) (map[string]any, error) {
	inputs := map[string]any{}
	for param, bind := range step.Bindings {
		switch {
		case bind.FromStep != "":
			stepOut, ok := outputs[bind.FromStep]
			if !ok {
				return nil, fmt.Errorf("step %s output not available for %s", bind.FromStep, param)
			}
			v, ok := stepOut[bind.FromParam]
			if !ok {
				return nil, fmt.Errorf("output %s.%s not produced", bind.FromStep, bind.FromParam)
			}
			inputs[param] = v
		case bind.FromUserText:
			text := p.Utterance
			if bind.Transform != "" && c.model != nil {
				transformed, usage, err := c.transform(bind.Transform, text)
				if err != nil {
					return nil, err
				}
				b.Charge("transform:"+param, usage.Cost, usage.Latency, 0)
				text = transformed
			}
			inputs[param] = text
		case bind.Value != nil:
			inputs[param] = bind.Value
		}
	}
	return inputs, nil
}

// transform runs USER.TEXT through the data planner's extract operator
// (§V-H: "the coordinator invokes the data planner to identify and generate
// a sequence of data operations to transform output data").
func (c *Coordinator) transform(transform, text string) (string, dataplan.Estimate, error) {
	instruction := transform
	if len(transform) > 7 && transform[:7] == "derive:" {
		instruction = transform[7:]
	}
	plan := &dataplan.Plan{
		Query:    "transform " + instruction,
		Strategy: "transform",
		Nodes: []dataplan.Node{{
			ID: "x", Kind: dataplan.OpExtract,
			Args: map[string]any{"instruction": instruction, "text": text},
		}},
		Output: "x",
	}
	exec := dataplan.NewExecutor(dataplan.Sources{Model: c.model})
	out, err := exec.Execute(plan)
	if err != nil {
		return "", dataplan.Estimate{}, err
	}
	return out.Text, out.Usage, nil
}

// stepDeadline derives one attempt's absolute completion deadline:
// StepTimeout, tightened to the plan's remaining latency headroom when a
// latency limit is set — a plan nearly out of budget must not let one step
// run for the full default timeout. The deadline rides the EXECUTE_AGENT
// directive, so the agent runtime bounds the processor context to it too.
func (c *Coordinator) stepDeadline(b *budget.Budget) time.Time {
	wait := c.opts.StepTimeout
	if b != nil && b.Limits().MaxLatency > 0 {
		if _, rem := b.Remaining(); rem < wait {
			wait = rem
		}
	}
	return time.Now().Add(wait)
}

// abortInvocation emits a targeted ABORT for one invocation so the agent
// runtime cancels that in-flight processor call (a step that timed out or
// was cancelled must not keep burning agent work).
func (c *Coordinator) abortInvocation(session, invID string) {
	_, _ = c.store.Append(streams.Message{
		Stream: agent.ControlStream(session), Kind: streams.Control, Sender: "coordinator",
		Directive: &streams.Directive{Op: streams.OpAbort, Args: map[string]any{"invocation_id": invID}},
	})
}

// executeStep streams an EXECUTE_AGENT instruction and awaits its DONE or
// ERROR report, collecting outputs from the step's reply stream. The wait
// aborts when ctx is cancelled (plan-level abort or failure elsewhere) or
// the deadline passes; either way a targeted ABORT stops the in-flight
// invocation. attempt distinguishes retries of one step (each needs a
// distinct invocation ID and reply stream, or a retry would consume the
// failed attempt's stale reports).
func (c *Coordinator) executeStep(ctx context.Context, session string, p *planner.Plan, step planner.Step, inputs map[string]any, deadline time.Time, attempt int) (StepResult, error) {
	sr := StepResult{StepID: step.ID, Agent: step.Agent, Outputs: map[string]any{}}
	replyStream := fmt.Sprintf("%s:%s:%s", session, p.ID, step.ID)
	invID := fmt.Sprintf("%s-%s", p.ID, step.ID)
	if attempt > 1 {
		replyStream = fmt.Sprintf("%s:a%d", replyStream, attempt)
		invID = fmt.Sprintf("%s-a%d", invID, attempt)
	}

	// Subscribe to control reports before issuing the instruction.
	ctrl := c.store.Subscribe(streams.Filter{
		Streams: []string{agent.ControlStream(session)},
		Kinds:   []streams.Kind{streams.Control},
	}, false)
	defer ctrl.Cancel()

	if err := agent.ExecuteDeadline(c.store, session, step.Agent, inputs, replyStream, invID, obs.FromContext(ctx).Token(), deadline); err != nil {
		return sr, err
	}

	wait := time.Until(deadline)
	timeout := time.After(wait)
	for {
		select {
		case msg, ok := <-ctrl.C():
			if !ok {
				return sr, fmt.Errorf("control stream closed")
			}
			d := msg.Directive
			if d == nil {
				continue
			}
			if id, _ := d.Args["invocation_id"].(string); id != invID {
				continue
			}
			switch d.Op {
			case agent.OpAgentError:
				errMsg, _ := d.Args["error"].(string)
				sr.Err = errMsg
				return sr, errors.New(errMsg)
			case agent.OpAgentDone:
				sr.Cost, _ = d.Args["cost"].(float64)
				if ms, ok := d.Args["latency_ms"].(float64); ok {
					sr.Latency = time.Duration(ms * float64(time.Millisecond))
				}
				msgs, err := c.store.ReadAll(replyStream)
				if err == nil {
					for _, m := range msgs {
						if m.Param != "" {
							sr.Outputs[m.Param] = m.Payload
						}
					}
				}
				return sr, nil
			}
		case <-ctx.Done():
			c.abortInvocation(session, invID)
			sr.Err = "cancelled"
			return sr, fmt.Errorf("step %s cancelled: %w", step.ID, ctx.Err())
		case <-timeout:
			c.abortInvocation(session, invID)
			sr.Err = "timeout"
			return sr, fmt.Errorf("%w: %s after %s", ErrStepTimeout, step.ID, wait.Truncate(time.Millisecond))
		}
	}
}
