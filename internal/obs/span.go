package obs

import (
	"container/list"
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
	"unicode/utf8"
)

// Span tracing. A Span is one timed unit of work — an ask, a plan, a
// scheduler step, a memo lookup, an agent invocation, a SQL statement —
// with a parent link, a component label and key/value attributes. Spans
// propagate two ways:
//
//   - In-process, via context.Context: StartSpan derives a child of the
//     span carried by ctx (ContextWith/FromContext).
//   - Across stream boundaries, via tokens: the coordinator embeds
//     Span.Token() in the EXECUTE_AGENT directive args and the agent
//     runtime resumes the trace with Tracer.Resume — orchestration crosses
//     goroutines over streams, so the trace context must ride the message,
//     not the call stack.
//
// Completed spans are recorded into a bounded per-session ring
// (Tracer.Session reads it; GET /trace/{session} and bpctl trace render
// it). Components that fire outside any ask (decentralized activations on
// an idle session) produce no spans: StartUnder anchors to the session's
// active root and returns a no-op span when there is none, so rings hold
// coherent ask trees rather than unanchored noise.

// Spans is the process-global tracer, the spans counterpart of Default.
var Spans = NewTracer()

const (
	// DefaultMaxSessions bounds how many per-session rings the tracer
	// retains; beyond it the least-recently-active session's trace is
	// evicted (SetMaxSessions overrides; System wires Config.TraceSessions).
	DefaultMaxSessions = 128
	// ringCapacity bounds each session's span ring; older spans are
	// overwritten (an ask on the hragents suite is ~20-40 spans, so the
	// ring holds the last ~50-100 asks of a session).
	ringCapacity = 2048
)

// Attr is one span attribute.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanData is a completed span as recorded in a session ring.
type SpanData struct {
	// ID is unique within the tracer; Parent is 0 for roots.
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	// Component names the producing layer: "session", "coordinator",
	// "scheduler", "memo", "agent", "relational".
	Component string `json:"component"`
	// Name describes the unit of work within the component.
	Name  string        `json:"name"`
	Start time.Time     `json:"start"`
	Dur   time.Duration `json:"duration_ns"`
	Attrs []Attr        `json:"attrs,omitempty"`
}

// Span is an in-flight span. All methods are safe on a nil receiver — a
// disabled tracer (or an unanchored StartUnder) hands out nil spans and
// instrumentation sites need no conditionals.
type Span struct {
	t         *Tracer
	session   string
	id        uint64
	parent    uint64
	component string
	name      string
	start     time.Time
	// open counts this ask's started-but-unended spans, shared down the
	// tree from the root (via ctx, resume and active-root anchoring). The
	// flight recorder polls it to know when the tree has quiesced.
	open *atomic.Int64

	mu    sync.Mutex
	attrs []Attr
	ended bool
}

// SetAttr attaches a key/value attribute (no-op after End).
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	}
	s.mu.Unlock()
}

// End completes the span and records it into its session's ring. Ending
// twice is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()
	s.t.record(s.session, SpanData{
		ID: s.id, Parent: s.parent, Component: s.component, Name: s.name,
		Start: s.start, Dur: time.Since(s.start), Attrs: attrs,
	}, s.parent == 0, s.id)
	if s.open != nil {
		s.open.Add(-1)
	}
}

// OpenInTree reports how many spans of this span's ask tree (itself
// included) have started but not yet ended. Zero for nil spans. The
// flight recorder uses it to wait for the tree to quiesce before
// snapshotting — agents end their spans a hair after the answer is
// displayed.
func (s *Span) OpenInTree() int64 {
	if s == nil || s.open == nil {
		return 0
	}
	return s.open.Load()
}

// ID returns the span id (0 for nil).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Token serializes the span identity for propagation across a stream
// boundary ("" for nil); Tracer.Resume parses it back.
func (s *Span) Token() string {
	if s == nil {
		return ""
	}
	return strconv.FormatUint(s.id, 36)
}

// Tracer records spans into bounded per-session rings. The session map
// itself is bounded too: past maxSessions the least-recently-active
// session's trace is evicted, so a daemon churning through millions of
// short sessions holds a constant amount of trace memory.
type Tracer struct {
	nextID atomic.Uint64

	mu       sync.Mutex
	max      int
	sessions map[string]*list.Element // of *sessionTrace
	lru      *list.List               // least-recently-active at the front
}

type sessionTrace struct {
	id string

	mu         sync.Mutex
	ring       []SpanData
	next       int // ring write cursor
	full       bool
	activeRoot uint64
	// rootOpen is the active root's open-span counter; spans anchored or
	// resumed under it (no ctx to inherit through) attach here.
	rootOpen *atomic.Int64
}

// NewTracer creates an empty tracer with the default session bound.
func NewTracer() *Tracer {
	return &Tracer{max: DefaultMaxSessions, sessions: map[string]*list.Element{}, lru: list.New()}
}

// SetMaxSessions re-bounds the per-session ring map (minimum 1), evicting
// least-recently-active sessions if already above the new bound.
func (t *Tracer) SetMaxSessions(n int) {
	if n < 1 {
		n = 1
	}
	t.mu.Lock()
	t.max = n
	t.evictLocked()
	t.mu.Unlock()
}

// SessionCount returns the number of retained session rings.
func (t *Tracer) SessionCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.sessions)
}

func (t *Tracer) evictLocked() {
	for len(t.sessions) > t.max {
		front := t.lru.Front()
		st := front.Value.(*sessionTrace)
		t.lru.Remove(front)
		delete(t.sessions, st.id)
	}
}

// session looks a session's ring up. A create (span activity) bumps the
// session to most-recently-active; pure reads leave the LRU order alone.
func (t *Tracer) session(id string, create bool) *sessionTrace {
	t.mu.Lock()
	defer t.mu.Unlock()
	el, ok := t.sessions[id]
	if ok {
		if create {
			t.lru.MoveToBack(el)
		}
		return el.Value.(*sessionTrace)
	}
	if !create {
		return nil
	}
	st := &sessionTrace{id: id, ring: make([]SpanData, 0, 64)}
	t.sessions[id] = t.lru.PushBack(st)
	t.evictLocked()
	return st
}

func (t *Tracer) newSpan(session string, parent uint64, component, name string, open *atomic.Int64) *Span {
	if open != nil {
		open.Add(1)
	}
	return &Span{
		t: t, session: session, id: t.nextID.Add(1), parent: parent,
		component: component, name: name, start: time.Now(), open: open,
	}
}

// StartRoot opens a root span and marks it the session's active root:
// until it ends, StartUnder anchors unparented work (stream-triggered
// agents, watched plans) beneath it. Returns nil while the plane is
// disabled.
func (t *Tracer) StartRoot(session, component, name string) *Span {
	if !enabled.Load() {
		return nil
	}
	sp := t.newSpan(session, 0, component, name, new(atomic.Int64))
	st := t.session(session, true)
	st.mu.Lock()
	st.activeRoot = sp.id
	st.rootOpen = sp.open
	st.mu.Unlock()
	return sp
}

// StartUnder opens a span parented to the session's active root. Without an
// active root (no ask in flight, or the plane disabled) it returns nil and
// nothing is recorded.
func (t *Tracer) StartUnder(session, component, name string) *Span {
	if !enabled.Load() {
		return nil
	}
	st := t.session(session, false)
	if st == nil {
		return nil
	}
	st.mu.Lock()
	root, open := st.activeRoot, st.rootOpen
	st.mu.Unlock()
	if root == 0 {
		return nil
	}
	return t.newSpan(session, root, component, name, open)
}

// Resume continues a trace across a stream boundary: token is a parent
// Span.Token() carried in a message. An empty or malformed token falls back
// to StartUnder.
func (t *Tracer) Resume(session, token, component, name string) *Span {
	if !enabled.Load() {
		return nil
	}
	parent, err := strconv.ParseUint(token, 36, 64)
	if err != nil || parent == 0 {
		return t.StartUnder(session, component, name)
	}
	st := t.session(session, false)
	if st == nil {
		return nil
	}
	// A resumed span belongs to whichever ask published the token; the
	// session's active ask is the overwhelmingly common (and only
	// observable) case, so it charges that root's open counter.
	st.mu.Lock()
	open := st.rootOpen
	if st.activeRoot == 0 {
		open = nil
	}
	st.mu.Unlock()
	return t.newSpan(session, parent, component, name, open)
}

// record appends a completed span to the session ring; a completed root
// releases the active-root anchor.
func (t *Tracer) record(session string, d SpanData, isRoot bool, id uint64) {
	st := t.session(session, true)
	st.mu.Lock()
	if len(st.ring) < ringCapacity && !st.full {
		st.ring = append(st.ring, d)
		if len(st.ring) == ringCapacity {
			st.full = true
		}
	} else {
		st.ring[st.next] = d
		st.next = (st.next + 1) % ringCapacity
	}
	if isRoot && st.activeRoot == id {
		st.activeRoot = 0
		st.rootOpen = nil
	}
	st.mu.Unlock()
}

// Session returns the session's recorded spans, oldest first.
func (t *Tracer) Session(session string) []SpanData {
	st := t.session(session, false)
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.full {
		return append([]SpanData(nil), st.ring...)
	}
	out := make([]SpanData, 0, ringCapacity)
	out = append(out, st.ring[st.next:]...)
	out = append(out, st.ring[:st.next]...)
	return out
}

// Tree returns the session's recorded spans belonging to the subtree
// rooted at root (the root itself included), oldest first — the flight
// recorder's one-ask view of a ring that may hold many asks. A root of 0
// returns every recorded span.
func (t *Tracer) Tree(session string, root uint64) []SpanData {
	spans := t.Session(session)
	if root == 0 || len(spans) == 0 {
		return spans
	}
	// Membership cannot assume ring order: a parent usually ends — and so
	// is recorded — after its children, but the ROOT ends the moment the
	// answer displays, a hair before the ask's laggard spans (the posting
	// agent and its scheduler/coordinator ancestors) land behind it. Walk
	// parent links to a fixpoint instead; each pass claims at least one
	// tree level, so iterations are bounded by tree depth.
	keep := make(map[uint64]bool, len(spans))
	keep[root] = true
	for grew := true; grew; {
		grew = false
		for _, d := range spans {
			if !keep[d.ID] && keep[d.Parent] {
				keep[d.ID] = true
				grew = true
			}
		}
	}
	out := make([]SpanData, 0, len(spans))
	for _, d := range spans {
		if keep[d.ID] {
			out = append(out, d)
		}
	}
	return out
}

// Sessions lists the sessions with recorded traces, least recently active
// first.
func (t *Tracer) Sessions() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.sessions))
	for el := t.lru.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*sessionTrace).id)
	}
	return out
}

// Reset drops all recorded traces (test hook).
func (t *Tracer) Reset() {
	t.mu.Lock()
	t.sessions = map[string]*list.Element{}
	t.lru = list.New()
	t.mu.Unlock()
}

// ---- context propagation ----

type ctxKey struct{}

// ContextWith returns ctx carrying the span (ctx unchanged for nil spans).
func ContextWith(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// StartSpan derives a child span of the span carried by ctx, returning the
// child-carrying context. Without a parent in ctx (or with the plane
// disabled) it returns (ctx, nil): instrumentation is free outside a traced
// request.
func StartSpan(ctx context.Context, component, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil || !enabled.Load() {
		return ctx, nil
	}
	sp := parent.t.newSpan(parent.session, parent.id, component, name, parent.open)
	return ContextWith(ctx, sp), sp
}

// Truncate shortens s to at most n bytes without splitting a multi-byte
// UTF-8 rune, appending "..." when anything was cut.
func Truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	cut := n
	for cut > 0 && !utf8.RuneStart(s[cut]) {
		cut--
	}
	return s[:cut] + "..."
}
